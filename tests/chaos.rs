//! Chaos acceptance tests (ISSUE 3): FedWCM under realistic client
//! unreliability — 30% dropout plus 10% stragglers on the CIFAR-10-preset
//! synthetic task — must still converge, landing within 5 accuracy points
//! of the fault-free run; and checkpoint/resume must be bitwise exact for
//! the real algorithms, not just test stubs.

use fedwcm_suite::faults::FaultConfig;
use fedwcm_suite::prelude::*;

fn cifar_task(seed: u64) -> (Dataset, Dataset, FlConfig) {
    let spec = DatasetPreset::Cifar10.spec();
    let counts = longtail_counts(10, 60, 0.1);
    let train = spec.generate_train(&counts, seed);
    let test = spec.generate_test(seed);
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 8;
    cfg.participation = 0.5;
    cfg.rounds = 15;
    cfg.local_epochs = 2;
    cfg.batch_size = 20;
    cfg.eval_every = 5;
    cfg.seed = seed;
    (train, test, cfg)
}

fn sim<'a>(train: &'a Dataset, test: &'a Dataset, cfg: &FlConfig) -> Simulation<'a> {
    let views = paper_partition(train, cfg.clients, 0.3, cfg.seed).views(train);
    Simulation::new(
        cfg.clone(),
        train,
        test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(20_25);
            // 3×8×8 synthetic CIFAR-10 images, flattened.
            fedwcm_suite::nn::models::mlp(192, &[32], 10, &mut rng)
        }),
    )
}

/// 30% dropout + 10% stragglers (up to 3 rounds late).
fn chaos_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        dropout: 0.3,
        straggler: 0.1,
        max_delay: 3,
        ..FaultConfig::zero(seed)
    })
}

#[test]
fn fedwcm_converges_under_dropout_and_stragglers() {
    let (train, test, cfg) = cifar_task(2001);
    let clean = sim(&train, &test, &cfg).run(&mut FedWcm::new());
    let chaotic = sim(&train, &test, &cfg)
        .with_fault_plan(chaos_plan(0xC0A7))
        .run(&mut FedWcm::new());

    let clean_acc = clean.final_accuracy(2);
    let chaos_acc = chaotic.final_accuracy(2);
    assert!(
        chaos_acc > clean_acc - 0.05,
        "chaos run collapsed: {chaos_acc:.4} vs fault-free {clean_acc:.4}"
    );

    // The report must show the faults actually landed.
    let report = chaotic.resilience_report(Some(&clean));
    assert!(report.totals.dropouts > 0, "no dropouts injected");
    assert!(report.totals.stragglers > 0, "no stragglers injected");
    assert!(
        report.totals.late_merged > 0,
        "no straggler upload ever merged late"
    );
    assert!(report.baseline_accuracy.is_some());
    // And the fault-free run reports an all-zero tally.
    let clean_report = clean.resilience_report(None);
    assert_eq!(clean_report.totals.injected(), 0);
    assert_eq!(clean_report.quorum_failures, 0);
}

/// The same chaos acceptance bar, under the buffered-K and fully-async
/// cadences: FedWCM must still land within 5 points of the fault-free
/// synchronous baseline despite 30% dropout and 10% stragglers. `k` is
/// sized below the post-dropout arrival rate (~2.8 healthy uploads per
/// round) so the buffer keeps flushing; the async window covers the
/// whole 4-client cohort.
#[test]
fn buffered_and_async_cadences_survive_chaos() {
    let (train, test, cfg) = cifar_task(2004);
    let clean = sim(&train, &test, &cfg).run(&mut FedWcm::new());
    let clean_acc = clean.final_accuracy(2);

    for cadence in [
        Cadence::BufferedK { k: 2 },
        Cadence::Async { max_in_flight: 4 },
    ] {
        let mut c = cfg.clone();
        c.cadence = cadence;
        let chaotic = sim(&train, &test, &c)
            .with_fault_plan(chaos_plan(0xC0A7))
            .run(&mut FedWcm::new());
        let acc = chaotic.final_accuracy(2);
        assert!(
            acc > clean_acc - 0.05,
            "{} chaos run collapsed: {acc:.4} vs fault-free sync {clean_acc:.4}",
            cadence.label()
        );
        assert!(
            chaotic.records.iter().map(|r| r.aggregations).sum::<u32>() > 0,
            "{} never aggregated",
            cadence.label()
        );
    }
}

/// The transport chaos acceptance bar (ISSUE 8): stack a lossy wire —
/// 10% dropped frames, 5% corrupted frames, deliveries delayed up to 2
/// rounds — on top of the PR-3 fault plan. Retries and the straggler/
/// dropout degradation paths must keep FedWCM within 5 accuracy points
/// of the clean synchronous baseline.
#[test]
fn fedwcm_converges_over_a_lossy_wire() {
    let (train, test, cfg) = cifar_task(2005);
    let clean = sim(&train, &test, &cfg).run(&mut FedWcm::new());
    let net = NetConfig::parse("drop:0.1,corrupt:0.05,delay:2,seed:19991").unwrap_or_else(|e| {
        panic!("spec must parse: {e}");
    });
    let chaotic = sim(&train, &test, &cfg)
        .with_fault_plan(chaos_plan(0xC0A7))
        .with_net_plan(NetPlan::new(net))
        .run(&mut FedWcm::new());

    let clean_acc = clean.final_accuracy(2);
    let chaos_acc = chaotic.final_accuracy(2);
    assert!(
        chaos_acc > clean_acc - 0.05,
        "lossy-wire run collapsed: {chaos_acc:.4} vs clean {clean_acc:.4}"
    );

    let totals = chaotic.net_totals();
    assert!(totals.frames_sent > 0, "transport never engaged");
    assert!(
        totals.retries > 0,
        "a 10%-drop wire must force at least one retry over 15 rounds"
    );
    // The report surfaces the transport outcomes next to the faults.
    let report = chaotic.resilience_report(Some(&clean)).to_string();
    assert!(
        report.contains("network:"),
        "report must show the wire:\n{report}"
    );
    // The clean run's books stay silent.
    assert!(clean.net_totals().is_zero());
}

#[test]
fn fedwcm_crash_resume_matches_uninterrupted_run() {
    let (train, test, mut cfg) = cifar_task(2002);
    cfg.rounds = 8;
    cfg.eval_every = 2;
    let s = sim(&train, &test, &cfg).with_fault_plan(chaos_plan(0x5EED));

    let full = s.run(&mut FedWcm::new());

    // Kill at round 4, serialize, restart from bytes.
    let ckpt = s
        .run_until(&mut FedWcm::new(), 4)
        .expect("FedWCM checkpoints");
    let bytes = ckpt.to_bytes();
    let restored = ServerCheckpoint::from_bytes(&bytes).expect("parse");
    let resumed = s.resume(&mut FedWcm::new(), &restored).expect("resume");

    assert_eq!(full.records.len(), resumed.records.len());
    for (a, b) in full.records.iter().zip(&resumed.records) {
        assert_eq!(
            a.train_loss.map(f64::to_bits),
            b.train_loss.map(f64::to_bits),
            "round {}",
            a.round
        );
        assert_eq!(
            a.update_norm.to_bits(),
            b.update_norm.to_bits(),
            "round {}",
            a.round
        );
        assert_eq!(
            a.test_acc.map(f64::to_bits),
            b.test_acc.map(f64::to_bits),
            "round {}",
            a.round
        );
        assert_eq!(
            a.alpha.map(f64::to_bits),
            b.alpha.map(f64::to_bits),
            "round {} (adapted alpha must survive the resume)",
            a.round
        );
        assert_eq!(a.faults, b.faults, "round {}", a.round);
    }
}

#[test]
fn momentum_baselines_checkpoint_too() {
    // Crash/resume bitwise equality for the baseline algorithms with
    // cross-round server state.
    let (train, test, mut cfg) = cifar_task(2003);
    cfg.rounds = 6;
    cfg.eval_every = 3;
    let s = sim(&train, &test, &cfg);

    type MakeAlgo = Box<dyn Fn() -> Box<dyn FederatedAlgorithm>>;
    let algos: Vec<(MakeAlgo, &str)> = vec![
        (Box::new(|| Box::new(FedAvg::new())), "FedAvg"),
        (Box::new(|| Box::new(FedCm::new(0.1))), "FedCM"),
        (Box::new(|| Box::new(Scaffold::new(8))), "SCAFFOLD"),
    ];
    for (make, label) in algos {
        let full = s.run(make().as_mut());
        let ckpt = s
            .run_until(make().as_mut(), 3)
            .unwrap_or_else(|e| panic!("{label} checkpoint failed: {e}"));
        let resumed = s
            .resume(make().as_mut(), &ckpt)
            .unwrap_or_else(|e| panic!("{label} resume failed: {e}"));
        for (a, b) in full.records.iter().zip(&resumed.records) {
            assert_eq!(
                a.update_norm.to_bits(),
                b.update_norm.to_bits(),
                "{label} round {}",
                a.round
            );
            assert_eq!(
                a.test_acc.map(f64::to_bits),
                b.test_acc.map(f64::to_bits),
                "{label} round {}",
                a.round
            );
        }
    }
}
