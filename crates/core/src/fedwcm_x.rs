//! Algorithm 3: FedWCM-X — the quantity-skew generalisation.
//!
//! Two changes over FedWCM (Appendix A.2):
//!
//! 1. weights gain a data-volume factor `w'_k ∝ w_k · n_k` (renormalised);
//! 2. the local learning rate is rescaled per client,
//!    `η'_l = η_l · B̂ / B_k`, where `B̂` is the step count a client would
//!    run under an equal split — large clients take proportionally smaller
//!    steps so their many batches do not dominate.
//!
//! With the engine's normalised-delta convention, `η'_l · B_k = η_l · B̂`
//! for every client, which is exactly Algorithm 3's `1/(η_l B̂)`
//! normalisation — the deltas arrive pre-normalised.

use crate::adaptive::{adaptive_alpha, score_ratio, ALPHA_MIN};
use crate::algorithm::FedWcmOptions;
use crate::score::{client_scores, global_distribution, imbalance_degree, temperature};
use crate::weighting::{aggregation_weights, volume_adjusted_weights};
use fedwcm_fl::algorithm::{
    server_step, weighted_average, FederatedAlgorithm, RoundInput, RoundLog,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_nn::loss::CrossEntropy;
use fedwcm_nn::opt::momentum_blend;

/// FedWCM-X (Algorithm 3).
pub struct FedWcmX {
    options: FedWcmOptions,
    momentum: Vec<f32>,
    alpha: f32,
    scores: Vec<f64>,
    mean_score: f64,
    imbalance: f64,
    temp: f64,
    classes: usize,
    /// Reference batch count `B̂` per round (equal-split steps).
    standard_batches: usize,
    prepared: bool,
}

impl FedWcmX {
    /// New FedWCM-X. `standard_batches` is `B̂`: the local step count of a
    /// client under an equal data split (computed by
    /// [`FedWcmX::standard_batches_for`]).
    pub fn new(standard_batches: usize) -> Self {
        assert!(standard_batches >= 1);
        FedWcmX {
            options: FedWcmOptions::default(),
            momentum: Vec::new(),
            alpha: ALPHA_MIN as f32,
            scores: Vec::new(),
            mean_score: 0.0,
            imbalance: 0.0,
            temp: 1.0,
            classes: 0,
            standard_batches,
            prepared: false,
        }
    }

    /// `B̂` for a dataset of `total` samples split over `clients` clients
    /// with the given batch size and local epochs.
    pub fn standard_batches_for(
        total: usize,
        clients: usize,
        batch_size: usize,
        local_epochs: usize,
    ) -> usize {
        let per_client = (total / clients.max(1)).max(1);
        per_client.div_ceil(batch_size).max(1) * local_epochs
    }

    /// Momentum value to be used next round.
    pub fn current_alpha(&self) -> f32 {
        self.alpha
    }

    fn prepare(&mut self, views: &[fedwcm_data::dataset::ClientView], classes: usize) {
        let global = global_distribution(views, classes);
        let target = self
            .options
            .target
            .clone()
            .unwrap_or_else(|| vec![1.0 / classes as f64; classes]);
        self.scores = client_scores(views, &global, &target);
        self.mean_score = self.scores.iter().sum::<f64>() / self.scores.len().max(1) as f64;
        self.imbalance = imbalance_degree(&global, &target);
        self.temp = temperature(&global, &target);
        self.classes = classes;
        self.prepared = true;
    }
}

impl FederatedAlgorithm for FedWcmX {
    fn name(&self) -> String {
        "FedWCM-X".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        // η'_l = η_l · B̂ / B_k  (equalises total local displacement).
        let b_k = (env.batches_per_epoch() * env.cfg.local_epochs).max(1);
        let lr = env.cfg.local_lr * self.standard_batches as f32 / b_k as f32;
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr,
            epochs: env.cfg.local_epochs,
        };
        let alpha = self.alpha;
        let momentum = &self.momentum;
        let mut v = vec![0.0f32; global.len()];
        run_local_sgd(env, global, &spec, move |grad, _, _| {
            if momentum.is_empty() {
                for g in grad.iter_mut() {
                    *g *= alpha;
                }
            } else {
                momentum_blend(&mut v, grad, momentum, alpha);
                grad.copy_from_slice(&v);
            }
        })
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        if !self.prepared {
            let classes = input.views[0].class_counts().len();
            self.prepare(input.views, classes);
        }
        if self.momentum.is_empty() {
            self.momentum = vec![0.0f32; global.len()];
        }
        let used_alpha = self.alpha as f64;

        // Eq. (4) weights × data volume, renormalised.
        let sampled_scores: Vec<f64> = input
            .updates
            .iter()
            .map(|u| self.scores[u.client])
            .collect();
        let base = aggregation_weights(&sampled_scores, self.temp);
        let sizes: Vec<usize> = input.updates.iter().map(|u| u.num_samples).collect();
        let w = volume_adjusted_weights(&base, &sizes);
        weighted_average(&input.updates, &w, &mut self.momentum);

        // Server step uses B̂ (deltas are normalised by η_l·B̂ already).
        server_step(
            global,
            &self.momentum,
            input.cfg,
            self.standard_batches as f32,
        );

        // Eq. (5).
        let q = score_ratio(&sampled_scores, self.mean_score);
        self.alpha = adaptive_alpha(self.imbalance, self.classes, q) as f32;

        RoundLog {
            alpha: Some(used_alpha),
            weights: Some(w),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_data::longtail::longtail_counts;
    use fedwcm_data::partition::fedgrab_partition;
    use fedwcm_data::synth::DatasetPreset;
    use fedwcm_fl::{FlConfig, Simulation};
    use fedwcm_nn::models::mlp;
    use fedwcm_stats::Xoshiro256pp;

    fn skewed_task(seed: u64, imb: f64) -> (fedwcm_data::Dataset, fedwcm_data::Dataset, FlConfig) {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 80, imb);
        let train = spec.generate_train(&counts, seed);
        let test = spec.generate_test(seed);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 8;
        cfg.participation = 0.5;
        cfg.rounds = 12;
        cfg.local_epochs = 2;
        cfg.batch_size = 20;
        cfg.eval_every = 4;
        cfg.seed = seed;
        (train, test, cfg)
    }

    #[test]
    fn standard_batches_formula() {
        assert_eq!(FedWcmX::standard_batches_for(800, 8, 20, 2), 10);
        assert_eq!(FedWcmX::standard_batches_for(10, 20, 50, 3), 3);
    }

    #[test]
    fn learns_under_quantity_skew() {
        let (train, test, cfg) = skewed_task(101, 0.5);
        // FedGrab partition ⇒ heavy quantity skew (the FedWCM-X regime).
        let part = fedgrab_partition(&train, cfg.clients, 0.5, cfg.seed);
        let views = part.views(&train);
        let b_hat = FedWcmX::standard_batches_for(
            train.len(),
            cfg.clients,
            cfg.batch_size,
            cfg.local_epochs,
        );
        let sim = Simulation::new(
            cfg,
            &train,
            &test,
            views,
            Box::new(|| {
                let mut rng = Xoshiro256pp::seed_from(2024);
                mlp(64, &[32], 10, &mut rng)
            }),
        );
        let h = sim.run(&mut FedWcmX::new(b_hat));
        assert!(h.final_accuracy(1) > 0.35, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn lr_rescaling_equalises_displacement_scale() {
        // Two clients with very different B_k must produce deltas of the
        // same normalisation (checked via the identity η'_l·B_k = η_l·B̂).
        let b_hat = 10usize;
        for b_k in [2usize, 10, 40] {
            let lr_scaled = 0.1 * b_hat as f32 / b_k as f32;
            assert!((lr_scaled * b_k as f32 - 0.1 * b_hat as f32).abs() < 1e-6);
        }
    }

    #[test]
    fn weights_logged_and_normalised() {
        let (train, test, mut cfg) = skewed_task(102, 0.5);
        cfg.rounds = 2;
        let part = fedgrab_partition(&train, cfg.clients, 0.5, cfg.seed);
        let views = part.views(&train);
        let sim = Simulation::new(
            cfg,
            &train,
            &test,
            views,
            Box::new(|| {
                let mut rng = Xoshiro256pp::seed_from(2024);
                mlp(64, &[32], 10, &mut rng)
            }),
        );
        let mut algo = FedWcmX::new(5);
        let _ = sim.run(&mut algo);
        assert!(algo.current_alpha() >= ALPHA_MIN as f32);
    }
}
