//! The [`FederatedAlgorithm`] trait: the plug-in point for every method.

use crate::client::{ClientEnv, ClientUpdate};
use crate::config::FlConfig;
use fedwcm_data::dataset::ClientView;

/// Everything an algorithm's aggregation step can see about a round.
pub struct RoundInput<'a> {
    /// Round index `r`.
    pub round: usize,
    /// Simulation configuration.
    pub cfg: &'a FlConfig,
    /// Updates from the sampled clients, in client-id order.
    pub updates: Vec<ClientUpdate>,
    /// All client views (indexable by client id) — FedWCM's weighting needs
    /// the sampled clients' class counts, and the global distribution.
    pub views: &'a [ClientView],
}

impl RoundInput<'_> {
    /// Mean local step count `B̄` over the sampled clients. The server step
    /// `x ← x − η_g·η_l·B̄·Δ` uses this to restore model-averaging scale.
    pub fn mean_batches(&self) -> f32 {
        if self.updates.is_empty() {
            return 1.0;
        }
        let total: usize = self.updates.iter().map(|u| u.num_batches).sum();
        total as f32 / self.updates.len() as f32
    }

    /// Mean training loss over sampled clients.
    pub fn mean_loss(&self) -> f32 {
        if self.updates.is_empty() {
            return 0.0;
        }
        self.updates.iter().map(|u| u.avg_loss).sum::<f32>() / self.updates.len() as f32
    }
}

/// Per-round diagnostic output recorded into the history.
#[derive(Clone, Debug, Default)]
pub struct RoundLog {
    /// Momentum value used this round (FedCM/FedWCM).
    pub alpha: Option<f64>,
    /// Aggregation weights used this round (FedWCM).
    pub weights: Option<Vec<f64>>,
}

/// Why an algorithm state blob could not be restored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StateError {
    /// The algorithm does not implement state capture, so a checkpointed
    /// run cannot be resumed with it.
    Unsupported,
    /// The blob does not parse as this algorithm's state (truncated,
    /// wrong version, or produced by a different algorithm).
    Malformed,
}

/// A federated-learning algorithm: local training + server aggregation.
///
/// `local_train` is called concurrently for the round's sampled clients
/// (hence `&self`); all mutable algorithm state (momentum buffers, control
/// variates, adaptive parameters) updates inside `aggregate`, which the
/// engine calls once per round with the collected updates.
pub trait FederatedAlgorithm: Send + Sync {
    /// Display name used in tables and legends.
    fn name(&self) -> String;

    /// Train one sampled client from the current global parameters.
    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate;

    /// Aggregate the round's updates into the global parameters and update
    /// internal state. Returns diagnostics for the history.
    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog;

    /// Serialize every piece of internal state that influences future
    /// rounds (momentum buffers, control variates, adaptive parameters),
    /// such that a fresh instance fed this blob via
    /// [`FederatedAlgorithm::load_state`] continues the run **bitwise
    /// identically**. Returns `None` when the algorithm does not support
    /// state capture — the conservative default, so checkpointing an
    /// unprepared algorithm fails loudly instead of resuming from a
    /// silently reset state. Stateless algorithms return an empty blob.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restore state captured by [`FederatedAlgorithm::save_state`].
    fn load_state(&mut self, _bytes: &[u8]) -> Result<(), StateError> {
        Err(StateError::Unsupported)
    }
}

/// Serialize a single `f32` buffer as an algorithm-state blob — the whole
/// cross-round state of the momentum-buffer family (FedCM, FedAvgM,
/// Mime-lite, …). Bit patterns are preserved exactly.
pub fn state_from_vec(v: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + v.len() * 4);
    fedwcm_nn::serialize::put_f32s(&mut out, v);
    out
}

/// Parse a blob written by [`state_from_vec`]. Rejects trailing bytes, so
/// a blob from a richer algorithm cannot silently load as a plain buffer.
pub fn state_to_vec(bytes: &[u8]) -> Result<Vec<f32>, StateError> {
    let mut r = fedwcm_nn::serialize::ByteReader::new(bytes);
    let v = r.f32s().ok_or(StateError::Malformed)?;
    if r.is_exhausted() {
        Ok(v)
    } else {
        Err(StateError::Malformed)
    }
}

/// Uniform average of update deltas (the FedAvg aggregation), written into
/// `out` (overwriting). Panics on empty updates.
pub fn uniform_average(updates: &[ClientUpdate], out: &mut [f32]) {
    assert!(!updates.is_empty(), "no updates to aggregate");
    out.fill(0.0);
    let w = 1.0 / updates.len() as f32;
    for u in updates {
        fedwcm_tensor::ops::axpy(w, &u.delta, out);
    }
}

/// Weighted average of update deltas with the given per-update weights
/// (need not sum to one; caller controls normalisation).
pub fn weighted_average(updates: &[ClientUpdate], weights: &[f64], out: &mut [f32]) {
    assert_eq!(
        updates.len(),
        weights.len(),
        "weights/updates length mismatch"
    );
    assert!(!updates.is_empty(), "no updates to aggregate");
    out.fill(0.0);
    for (u, &w) in updates.iter().zip(weights) {
        fedwcm_tensor::ops::axpy(w as f32, &u.delta, out);
    }
}

/// Apply the server step `x ← x − η_g·η_l·B̄·Δ` (see crate docs).
pub fn server_step(global: &mut [f32], direction: &[f32], cfg: &FlConfig, mean_batches: f32) {
    let step = cfg.global_lr * cfg.local_lr * mean_batches;
    fedwcm_tensor::ops::axpy(-step, direction, global);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn upd(client: usize, delta: Vec<f32>, batches: usize) -> ClientUpdate {
        ClientUpdate {
            client,
            delta,
            num_samples: 10,
            num_batches: batches,
            avg_loss: 1.0,
            extra: None,
        }
    }

    #[test]
    fn uniform_average_is_mean() {
        let updates = vec![upd(0, vec![1.0, 2.0], 5), upd(1, vec![3.0, 4.0], 5)];
        let mut out = vec![9.0; 2];
        uniform_average(&updates, &mut out);
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn weighted_average_applies_weights() {
        let updates = vec![upd(0, vec![1.0, 0.0], 5), upd(1, vec![0.0, 1.0], 5)];
        let mut out = vec![0.0; 2];
        weighted_average(&updates, &[0.25, 0.75], &mut out);
        assert_eq!(out, vec![0.25, 0.75]);
    }

    #[test]
    fn server_step_recovers_model_averaging() {
        // One client, identity aggregation: the server step must land the
        // global model exactly on the client's final local model.
        let cfg = FlConfig {
            global_lr: 1.0,
            local_lr: 0.1,
            ..FlConfig::default_sim()
        };
        let global_before = vec![1.0f32, -1.0];
        // Client moved to [0.5, -0.8] over B=4 steps at lr=0.1:
        let local_final = [0.5f32, -0.8];
        let delta: Vec<f32> = global_before
            .iter()
            .zip(&local_final)
            .map(|(g, p)| (g - p) / (0.1 * 4.0))
            .collect();
        let mut global = global_before.clone();
        server_step(&mut global, &delta, &cfg, 4.0);
        for (g, l) in global.iter().zip(&local_final) {
            assert!((g - l).abs() < 1e-6);
        }
    }

    #[test]
    fn state_blob_roundtrip_and_rejection() {
        let v = vec![1.5f32, f32::NAN, -0.0];
        let blob = state_from_vec(&v);
        let back = state_to_vec(&blob).expect("roundtrip");
        let bits: Vec<u32> = back.iter().map(|x| x.to_bits()).collect();
        let want: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
        assert_eq!(bits, want, "bit patterns must survive");
        // Trailing garbage and truncation are both malformed.
        let mut long = blob.clone();
        long.push(0);
        assert_eq!(state_to_vec(&long), Err(StateError::Malformed));
        assert_eq!(
            state_to_vec(&blob[..blob.len() - 1]),
            Err(StateError::Malformed)
        );
    }

    #[test]
    fn mean_batches_handles_mixed_sizes() {
        let cfg = FlConfig::default_sim();
        let input = RoundInput {
            round: 0,
            cfg: &cfg,
            updates: vec![upd(0, vec![], 2), upd(1, vec![], 6)],
            views: &[],
        };
        assert_eq!(input.mean_batches(), 4.0);
        assert_eq!(input.mean_loss(), 1.0);
    }
}
