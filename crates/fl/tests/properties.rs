//! Property-based tests for the FL engine: aggregation algebra and
//! convention invariants under arbitrary inputs.

use fedwcm_fl::algorithm::{server_step, uniform_average, weighted_average};
use fedwcm_fl::client::ClientUpdate;
use fedwcm_fl::quadratic::{run_quadratic_fedcm, QuadRunConfig, QuadraticProblem};
use fedwcm_fl::FlConfig;
use proptest::prelude::*;

fn updates(deltas: Vec<Vec<f32>>) -> Vec<ClientUpdate> {
    deltas
        .into_iter()
        .enumerate()
        .map(|(k, delta)| ClientUpdate {
            client: k,
            delta,
            num_samples: 10,
            num_batches: 5,
            avg_loss: 1.0,
            extra: None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniform_average_bounded_by_extremes(
        n in 1usize..8, dim in 1usize..20, seed in any::<u64>(),
    ) {
        let deltas: Vec<Vec<f32>> = (0..n)
            .map(|k| (0..dim).map(|i| ((seed as usize + k * 31 + i) as f32).sin()).collect())
            .collect();
        let ups = updates(deltas.clone());
        let mut avg = vec![0.0f32; dim];
        uniform_average(&ups, &mut avg);
        for i in 0..dim {
            let min = deltas.iter().map(|d| d[i]).fold(f32::INFINITY, f32::min);
            let max = deltas.iter().map(|d| d[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(avg[i] >= min - 1e-5 && avg[i] <= max + 1e-5);
        }
    }

    #[test]
    fn weighted_average_convexity(
        n in 2usize..6, dim in 1usize..15, seed in any::<u64>(),
        raw_w in prop::collection::vec(0.01f64..1.0, 2..6),
    ) {
        prop_assume!(raw_w.len() >= n);
        let total: f64 = raw_w[..n].iter().sum();
        let w: Vec<f64> = raw_w[..n].iter().map(|x| x / total).collect();
        let deltas: Vec<Vec<f32>> = (0..n)
            .map(|k| (0..dim).map(|i| ((seed as usize + k * 17 + i * 3) as f32).cos()).collect())
            .collect();
        let ups = updates(deltas.clone());
        let mut out = vec![0.0f32; dim];
        weighted_average(&ups, &w, &mut out);
        for i in 0..dim {
            let min = deltas.iter().map(|d| d[i]).fold(f32::INFINITY, f32::min);
            let max = deltas.iter().map(|d| d[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[i] >= min - 1e-4 && out[i] <= max + 1e-4);
        }
    }

    #[test]
    fn server_step_linear_in_lr(dim in 1usize..20, lr in 0.01f32..2.0, seed in any::<u64>()) {
        let dir: Vec<f32> = (0..dim).map(|i| ((seed as usize + i) as f32).sin()).collect();
        let base: Vec<f32> = (0..dim).map(|i| (i as f32) * 0.1).collect();
        let mut cfg = FlConfig::default_sim();
        cfg.global_lr = lr;
        cfg.local_lr = 0.1;
        let mut g1 = base.clone();
        server_step(&mut g1, &dir, &cfg, 4.0);
        cfg.global_lr = 2.0 * lr;
        let mut g2 = base.clone();
        server_step(&mut g2, &dir, &cfg, 4.0);
        // Displacement doubles with the global lr.
        for i in 0..dim {
            let d1 = g1[i] - base[i];
            let d2 = g2[i] - base[i];
            prop_assert!((d2 - 2.0 * d1).abs() < 1e-4);
        }
    }

    #[test]
    fn quadratic_testbed_bounded_iterates(
        clients in 2usize..6, dim in 2usize..8, alpha in 0.1f64..1.0, seed in any::<u64>(),
    ) {
        let p = QuadraticProblem::random(clients, dim, 1.0, 0.2, seed);
        let cfg = QuadRunConfig { local_steps: 3, rounds: 30, local_lr: 0.05, alpha, seed };
        let norms = run_quadratic_fedcm(&p, &cfg);
        prop_assert_eq!(norms.len(), 30);
        prop_assert!(norms.iter().all(|v| v.is_finite()));
        // Stable configuration: the trailing average must not exceed the
        // leading average (no divergence).
        let head: f64 = norms[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = norms[25..].iter().sum::<f64>() / 5.0;
        prop_assert!(tail <= head * 2.0 + 1.0, "head {head} tail {tail}");
    }
}
