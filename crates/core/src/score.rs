//! Global information gathering: scarcity scores (Eq. 3) and the
//! imbalance-driven temperature.

use fedwcm_data::dataset::ClientView;
use fedwcm_stats::describe::total_variation;

/// Aggregate the global class distribution from client views (what the
/// HE protocol of §5.5 computes privately; here the simulation server does
/// it in the clear — see `fedwcm-he` for the encrypted path).
pub fn global_distribution(views: &[ClientView], classes: usize) -> Vec<f64> {
    let mut counts = vec![0usize; classes];
    for v in views {
        for (c, &n) in v.class_counts().iter().enumerate() {
            counts[c] += n;
        }
    }
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![1.0 / classes as f64; classes];
    }
    counts.iter().map(|&n| n as f64 / total as f64).collect()
}

/// Eq. (3): client scarcity scores.
///
/// The paper writes `s_k = Σ_c |p̂_c − p_c| · n_{k,c} / Σ_c n_{k,c}` and
/// states that "a higher score indicates that the client has more globally
/// scarce data". Taken literally, the absolute value breaks that
/// semantics: under a long tail the *head* class has the largest
/// deviation `|p̂ − p|`, so head-rich clients would score highest — the
/// opposite of the intent. We therefore use the **rectified deviation**
/// `max(p̂_c − p_c, 0)`: only globally *under-represented* classes
/// contribute, making the score exactly "the fraction of this client's
/// data that is globally scarce, weighted by how scarce". Scores are
/// non-negative (required by the `q_r` ratio in Eq. 5) and vanish when the
/// global distribution matches the target. The literal variant is kept as
/// [`client_scores_literal`] for the ablation benches.
pub fn client_scores(views: &[ClientView], global: &[f64], target: &[f64]) -> Vec<f64> {
    assert_eq!(global.len(), target.len(), "distribution supports differ");
    let dev: Vec<f64> = target
        .iter()
        .zip(global)
        .map(|(t, g)| (t - g).max(0.0))
        .collect();
    views
        .iter()
        .map(|v| {
            let counts = v.class_counts();
            assert_eq!(counts.len(), dev.len(), "class count mismatch");
            let total: usize = counts.iter().sum();
            if total == 0 {
                return 0.0;
            }
            let weighted: f64 = counts.iter().zip(&dev).map(|(&n, d)| n as f64 * d).sum();
            weighted / total as f64
        })
        .collect()
}

/// Eq. (3) taken literally (absolute deviation). Kept for the ablation
/// benches; see [`client_scores`] for why the rectified form is the
/// default.
pub fn client_scores_literal(views: &[ClientView], global: &[f64], target: &[f64]) -> Vec<f64> {
    assert_eq!(global.len(), target.len(), "distribution supports differ");
    let dev: Vec<f64> = target
        .iter()
        .zip(global)
        .map(|(t, g)| (t - g).abs())
        .collect();
    views
        .iter()
        .map(|v| {
            let counts = v.class_counts();
            let total: usize = counts.iter().sum();
            if total == 0 {
                return 0.0;
            }
            counts
                .iter()
                .zip(&dev)
                .map(|(&n, d)| n as f64 * d)
                .sum::<f64>()
                / total as f64
        })
        .collect()
}

/// Global imbalance degree `D`: total-variation distance between the
/// actual global distribution and the target. `0` = perfectly on-target.
pub fn imbalance_degree(global: &[f64], target: &[f64]) -> f64 {
    total_variation(global, target)
}

/// The adaptive temperature of Eq. (4).
///
/// Works inversely with imbalance and is scaled by the class count so the
/// softmax sensitivity is consistent across datasets (scores shrink like
/// `1/C`): `T = (1 − D) / ((D + ε) · C)`, clamped for numeric safety.
/// Balanced data ⇒ `T` huge ⇒ near-uniform weights; heavy imbalance ⇒
/// small `T` ⇒ decisive weighting.
pub fn temperature(global: &[f64], target: &[f64]) -> f64 {
    let classes = global.len();
    let d = imbalance_degree(global, target);
    let t = (1.0 - d).max(1e-3) / ((d + 1e-3) * classes as f64);
    t.clamp(1e-5, 1e6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_data::dataset::{ClientView, Dataset};
    use fedwcm_tensor::Tensor;

    fn views_from_counts(counts: &[Vec<usize>]) -> (Dataset, Vec<ClientView>) {
        // Build a dataset whose labels realise the requested counts.
        let classes = counts[0].len();
        let mut labels = Vec::new();
        let mut owners = Vec::new();
        for (k, row) in counts.iter().enumerate() {
            for (c, &n) in row.iter().enumerate() {
                for _ in 0..n {
                    labels.push(c);
                    owners.push(k);
                }
            }
        }
        let n = labels.len();
        let ds = Dataset::new(Tensor::zeros(&[n, 2]), labels, classes);
        let views = (0..counts.len())
            .map(|k| {
                let idx: Vec<usize> = owners
                    .iter()
                    .enumerate()
                    .filter(|&(_, &o)| o == k)
                    .map(|(i, _)| i)
                    .collect();
                ClientView::new(idx, &ds)
            })
            .collect();
        (ds, views)
    }

    #[test]
    fn global_distribution_sums_counts() {
        let (_, views) = views_from_counts(&[vec![3, 1], vec![1, 5]]);
        let g = global_distribution(&views, 2);
        assert!((g[0] - 0.4).abs() < 1e-12);
        assert!((g[1] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn scarce_class_holders_score_higher() {
        // Class 1 is globally scarce; client 1 holds mostly class 1.
        let (_, views) = views_from_counts(&[vec![90, 2], vec![2, 6]]);
        let g = global_distribution(&views, 2);
        let target = [0.5, 0.5];
        let s = client_scores(&views, &g, &target);
        assert!(s[1] > s[0], "minority-rich client must score higher: {s:?}");
    }

    #[test]
    fn balanced_global_gives_zero_scores() {
        let (_, views) = views_from_counts(&[vec![10, 0], vec![0, 10]]);
        let g = global_distribution(&views, 2);
        let target = [0.5, 0.5];
        // Global is balanced even though clients are skewed.
        let s = client_scores(&views, &g, &target);
        assert!(s.iter().all(|&x| x.abs() < 1e-12), "{s:?}");
    }

    #[test]
    fn empty_client_scores_zero() {
        let (ds, _) = views_from_counts(&[vec![2, 2]]);
        let empty = ClientView::new(vec![], &ds);
        let s = client_scores(&[empty], &[0.5, 0.5], &[0.5, 0.5]);
        assert_eq!(s, vec![0.0]);
    }

    #[test]
    fn temperature_decreases_with_imbalance() {
        let target = vec![0.25; 4];
        let balanced = vec![0.25; 4];
        let skewed = vec![0.7, 0.1, 0.1, 0.1];
        let very_skewed = vec![0.97, 0.01, 0.01, 0.01];
        let t0 = temperature(&balanced, &target);
        let t1 = temperature(&skewed, &target);
        let t2 = temperature(&very_skewed, &target);
        assert!(t0 > t1 && t1 > t2, "T sequence {t0} {t1} {t2}");
    }

    #[test]
    fn temperature_scales_with_classes() {
        // Same TV distance, more classes ⇒ smaller T (scores shrink ~1/C).
        let t10 = temperature(&make_skewed(10), &[0.1; 10]);
        let t100 = temperature(&make_skewed(100), &vec![0.01; 100]);
        assert!(t100 < t10, "t10 {t10} t100 {t100}");
    }

    fn make_skewed(classes: usize) -> Vec<f64> {
        // Head class has half the mass, rest uniform.
        let mut v = vec![0.5 / (classes - 1) as f64; classes];
        v[0] = 0.5;
        v
    }

    #[test]
    fn imbalance_degree_bounds() {
        let target = vec![0.25; 4];
        assert_eq!(imbalance_degree(&target, &target), 0.0);
        let extreme = vec![1.0, 0.0, 0.0, 0.0];
        let d = imbalance_degree(&extreme, &target);
        assert!((d - 0.75).abs() < 1e-12);
    }
}
