//! Architecture presets mirroring the paper's per-dataset model choices.
//!
//! The paper uses a 3-layer MLP on Fashion-MNIST, ResNet-18 on SVHN and
//! CIFAR-10, and ResNet-34 on CIFAR-100/ImageNet. The CPU-scaled stand-ins
//! here keep the same structural roles: [`mlp`] for the flat-feature
//! preset, [`res_lite`] as the residual CNN backbone (conv stem, residual
//! blocks at two resolutions, global average pooling, linear classifier).

use crate::conv::{AvgPool2d, Conv2d, GlobalAvgPool};
use crate::dense::Dense;
use crate::layer::{Layer, Relu};
use crate::model::Model;
use crate::residual::Residual;
use fedwcm_stats::Xoshiro256pp;

/// Multilayer perceptron: `in → hidden… → classes` with ReLU between.
pub fn mlp(in_features: usize, hidden: &[usize], classes: usize, rng: &mut Xoshiro256pp) -> Model {
    assert!(classes >= 2, "need at least two classes");
    let mut layers: Vec<Box<dyn Layer>> = Vec::new();
    let mut width = in_features;
    for &h in hidden {
        layers.push(Box::new(Dense::new(width, h)));
        layers.push(Box::new(Relu::new()));
        width = h;
    }
    layers.push(Box::new(Dense::new(width, classes)));
    Model::new(layers, in_features, rng)
}

fn res_block(c: usize, h: usize, w: usize) -> Residual {
    Residual::new(vec![
        Box::new(Conv2d::new(c, h, w, c, 3, 1, 1)),
        Box::new(Relu::new()),
        Box::new(Conv2d::new(c, h, w, c, 3, 1, 1)),
    ])
}

/// Compact residual CNN ("ResLite") over `[c_in, h, w]` images.
///
/// Structure: 3×3 conv stem to `width` channels → ReLU → 2× avg-pool →
/// residual block → 2× avg-pool → residual block → global average pool →
/// linear classifier. `h` and `w` must be divisible by 4.
pub fn res_lite(
    c_in: usize,
    h: usize,
    w: usize,
    classes: usize,
    width: usize,
    rng: &mut Xoshiro256pp,
) -> Model {
    assert!(
        h.is_multiple_of(4) && w.is_multiple_of(4),
        "res_lite needs h, w divisible by 4"
    );
    assert!(classes >= 2 && width >= 4);
    let layers: Vec<Box<dyn Layer>> = vec![
        Box::new(Conv2d::new(c_in, h, w, width, 3, 1, 1)),
        Box::new(Relu::new()),
        Box::new(AvgPool2d::new(width, h, w, 2)),
        Box::new(res_block(width, h / 2, w / 2)),
        Box::new(Relu::new()),
        Box::new(AvgPool2d::new(width, h / 2, w / 2, 2)),
        Box::new(res_block(width, h / 4, w / 4)),
        Box::new(Relu::new()),
        Box::new(GlobalAvgPool::new(width, h / 4, w / 4)),
        Box::new(Dense::new(width, classes)),
    ];
    Model::new(layers, c_in * h * w, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::{CrossEntropy, Loss};
    use fedwcm_tensor::Tensor;

    #[test]
    fn mlp_shapes() {
        let mut rng = Xoshiro256pp::seed_from(1);
        let mut m = mlp(16, &[32, 32], 10, &mut rng);
        assert_eq!(m.out_features(), 10);
        let x = Tensor::zeros(&[4, 16]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[4, 10]);
    }

    #[test]
    fn res_lite_shapes() {
        let mut rng = Xoshiro256pp::seed_from(2);
        let mut m = res_lite(3, 8, 8, 10, 8, &mut rng);
        assert_eq!(m.in_features(), 3 * 64);
        assert_eq!(m.out_features(), 10);
        let x = Tensor::zeros(&[2, 192]);
        let y = m.forward(&x, false);
        assert_eq!(y.shape(), &[2, 10]);
    }

    #[test]
    fn res_lite_trains_on_toy_task() {
        let mut rng = Xoshiro256pp::seed_from(3);
        let mut m = res_lite(1, 4, 4, 2, 4, &mut rng);
        // Class 0: bright images; class 1: dark images.
        let mut xv = vec![0.0f32; 4 * 16];
        xv[..2 * 16].fill(1.0);
        let x = Tensor::from_vec(xv, &[4, 16]);
        let y = [0usize, 0, 1, 1];
        let loss = CrossEntropy;
        let mut grads = vec![0.0; m.param_len()];
        let before = m.loss_grad(&x, &y, &loss, &mut grads);
        for _ in 0..150 {
            let _ = m.loss_grad(&x, &y, &loss, &mut grads);
            crate::opt::sgd_step(m.params_mut(), &grads, 0.2);
        }
        let after = m.loss_grad(&x, &y, &loss, &mut grads);
        assert!(after < before, "loss {before} -> {after}");
        assert_eq!(m.accuracy(&x, &y), 1.0);
    }

    #[test]
    fn res_lite_gradcheck_subset() {
        let mut rng = Xoshiro256pp::seed_from(4);
        let mut m = res_lite(1, 4, 4, 3, 4, &mut rng);
        let x = Tensor::randn(&[2, 16], 1.0, &mut rng);
        let y = [0usize, 2];
        let loss = CrossEntropy;
        let mut grads = vec![0.0; m.param_len()];
        let _ = m.loss_grad(&x, &y, &loss, &mut grads);
        let base = m.params().to_vec();
        let eps = 1e-2;
        let mut checked = 0;
        for i in (0..base.len()).step_by(base.len() / 24 + 1) {
            let mut p = base.clone();
            p[i] += eps;
            m.set_params(&p);
            let up = loss.loss_and_grad(&m.forward(&x, false), &y).0;
            p[i] -= 2.0 * eps;
            m.set_params(&p);
            let down = loss.loss_and_grad(&m.forward(&x, false), &y).0;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads[i]).abs() < 0.05,
                "param {i}: fd {fd} vs analytic {}",
                grads[i]
            );
            checked += 1;
            m.set_params(&base);
        }
        assert!(checked >= 20);
    }
}
