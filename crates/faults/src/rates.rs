//! Shared rate-partitioning helpers for seeded fault schedules.
//!
//! Both the client-level [`FaultPlan`](crate::FaultPlan) and the
//! frame-level network plan in `fedwcm-transport` follow the same
//! discipline: one uniform draw per decision point, partitioned by a
//! fixed-order list of rates. Centralising the partition (and the rate
//! validation) here keeps the two plans bitwise consistent with each
//! other and with any future plan family.

/// Partition a uniform draw `u ∈ [0, 1)` by `rates`, returning the index
/// of the interval it falls in, or `None` for the healthy remainder.
///
/// Edges accumulate left to right (`rates[0]`, then `rates[0]+rates[1]`,
/// …), exactly reproducing the original hand-rolled edge walk so that
/// refactored call sites draw bitwise-identical schedules.
pub fn pick(u: f64, rates: &[f64]) -> Option<usize> {
    let mut edge = 0.0;
    for (i, &r) in rates.iter().enumerate() {
        edge += r;
        if u < edge {
            return Some(i);
        }
    }
    None
}

/// Validate a named rate list; panics with context on misconfiguration.
///
/// Each rate must lie in `[0, 1]` and the rates must sum to at most 1
/// (the remainder is the healthy probability).
pub fn validate(named: &[(&str, f64)]) {
    for &(name, r) in named {
        assert!(
            (0.0..=1.0).contains(&r),
            "{name} rate must be in [0,1], got {r}"
        );
    }
    let total: f64 = named.iter().map(|&(_, r)| r).sum();
    assert!(
        total <= 1.0 + 1e-12,
        "fault rates must sum to ≤ 1, got {total}"
    );
}

/// Non-panicking twin of [`validate`], for parsing user-supplied specs
/// (CLI flags) where misconfiguration should surface as an error message
/// rather than a panic.
pub fn check(named: &[(&str, f64)]) -> Result<(), String> {
    for &(name, r) in named {
        if !(0.0..=1.0).contains(&r) {
            return Err(format!("{name} rate must be in [0,1], got {r}"));
        }
    }
    let total: f64 = named.iter().map(|&(_, r)| r).sum();
    if total > 1.0 + 1e-12 {
        return Err(format!("fault rates must sum to ≤ 1, got {total}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_walks_edges_left_to_right() {
        let rates = [0.3, 0.1, 0.05, 0.05];
        assert_eq!(pick(0.0, &rates), Some(0));
        assert_eq!(pick(0.29, &rates), Some(0));
        assert_eq!(pick(0.3, &rates), Some(1));
        assert_eq!(pick(0.39, &rates), Some(1));
        assert_eq!(pick(0.4, &rates), Some(2));
        assert_eq!(pick(0.45, &rates), Some(3));
        assert_eq!(pick(0.5, &rates), None);
        assert_eq!(pick(0.99, &rates), None);
    }

    #[test]
    fn pick_with_no_rates_is_always_healthy() {
        assert_eq!(pick(0.0, &[]), None);
    }

    #[test]
    fn check_mirrors_validate() {
        assert!(check(&[("a", 0.5), ("b", 0.5)]).is_ok());
        assert!(check(&[("a", -0.1)]).is_err());
        assert!(check(&[("a", 0.9), ("b", 0.2)]).is_err());
    }

    #[test]
    #[should_panic]
    fn validate_rejects_sum_over_one() {
        validate(&[("a", 0.9), ("b", 0.2)]);
    }
}
