//! Deterministic fault injection for federated simulations.
//!
//! The paper's evaluation assumes every sampled client returns a healthy
//! delta every round; production federations do not. This crate defines a
//! seeded, fully deterministic [`FaultPlan`]: a per-round, per-client
//! schedule of injected failures drawn from a dedicated RNG stream (the
//! same `Xoshiro256pp::stream` discipline the engine uses for client
//! sampling, under a fault-specific stream label). Because the plan has
//! its own seed and its own streams, attaching a plan to a simulation
//! **never perturbs** any existing RNG stream — client sampling, local
//! mini-batching, and model init draw exactly the same values with or
//! without a plan, and an all-zero-rate plan reproduces a fault-free run
//! bit for bit.
//!
//! # Fault taxonomy
//!
//! * **Dropout** — the client trains but its upload never reaches the
//!   server (crash, network partition, user closed the app).
//! * **Straggler** — the upload arrives `delay ≥ 1` rounds late; the
//!   server buffers it and merges it with a staleness discount.
//! * **Corruption** — the upload is damaged in transit/storage: NaN
//!   injection, sign flip, or norm blow-up. Injected *after* the client
//!   emitted a healthy delta, so it exercises the server's containment
//!   filter from the outside.
//! * **Replay** — a stale duplicate of the client's previous upload
//!   arrives instead of the fresh delta (retry bug, duplicated queue
//!   message).
//!
//! At most one fault is injected per `(round, client)` pair; the draw is
//! a single uniform variate partitioned by the configured rates, so the
//! schedule for any pair is a pure function of `(fault_seed, round,
//! client)` and is identical across thread counts, platforms, and runs.

#![warn(missing_docs)]

pub mod rates;

use fedwcm_stats::rng::{Rng, Xoshiro256pp};

/// Stream label for fault draws (disjoint from the engine's sampling
/// stream `0x5A3B` and the client-local stream `0xC11E`).
pub const STREAM_FAULT: u64 = 0xFA17;

/// How an injected corruption damages a delta.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Corruption {
    /// Overwrite the first component with NaN (bit rot on the wire).
    NanInject,
    /// Negate every component (systematic encoding bug).
    SignFlip,
    /// Scale every component by `1e12` (unit/precision mix-up), pushing
    /// the norm past any sane containment threshold.
    NormBlowup,
}

/// One scheduled fault for a `(round, client)` pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The upload never arrives.
    Dropout,
    /// The upload arrives `delay` rounds late (`delay ≥ 1`).
    Straggler {
        /// Rounds of lateness; the staleness discount is `1/(1+delay)`.
        delay: usize,
    },
    /// The upload arrives damaged.
    Corrupt(Corruption),
    /// A stale duplicate of the client's previous upload arrives instead
    /// of the fresh delta.
    Replay,
}

/// Rates and seed defining a [`FaultPlan`].
///
/// Each rate is the per-`(round, client)` probability of that fault; the
/// rates must each lie in `[0, 1]` and sum to at most 1 (the remainder is
/// the healthy-upload probability).
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed of the dedicated fault RNG stream. Independent of the
    /// simulation seed: the same experiment can be re-run under a
    /// different fault realisation without touching any training stream.
    pub seed: u64,
    /// P(upload lost).
    pub dropout: f64,
    /// P(upload late).
    pub straggler: f64,
    /// Maximum straggler delay in rounds (delays are uniform on
    /// `1..=max_delay`); must be ≥ 1 whenever `straggler > 0`.
    pub max_delay: usize,
    /// P(upload corrupted).
    pub corruption: f64,
    /// P(stale duplicate replayed instead of the fresh upload).
    pub replay: f64,
}

impl FaultConfig {
    /// A fault-free configuration (all rates zero) under `seed`.
    pub fn zero(seed: u64) -> Self {
        FaultConfig {
            seed,
            dropout: 0.0,
            straggler: 0.0,
            max_delay: 1,
            corruption: 0.0,
            replay: 0.0,
        }
    }

    /// Validate rates; panics with context on misconfiguration.
    pub fn validate(&self) {
        rates::validate(&[
            ("dropout", self.dropout),
            ("straggler", self.straggler),
            ("corruption", self.corruption),
            ("replay", self.replay),
        ]);
        assert!(
            self.straggler == 0.0 || self.max_delay >= 1,
            "max_delay must be ≥ 1 when stragglers are enabled"
        );
    }
}

/// A seeded, fully deterministic per-round, per-client fault schedule.
///
/// The plan is stateless: [`FaultPlan::fault_for`] is a pure function, so
/// any component (engine, communication accounting, reports) can query
/// the same schedule independently and agree exactly.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    cfg: FaultConfig,
}

impl FaultPlan {
    /// Build a plan from a validated configuration.
    pub fn new(cfg: FaultConfig) -> Self {
        cfg.validate();
        FaultPlan { cfg }
    }

    /// A plan that injects nothing (the bitwise no-op plan).
    pub fn zero(seed: u64) -> Self {
        Self::new(FaultConfig::zero(seed))
    }

    /// The configuration this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// True if every rate is zero: the plan can never inject a fault.
    pub fn is_zero(&self) -> bool {
        self.cfg.dropout == 0.0
            && self.cfg.straggler == 0.0
            && self.cfg.corruption == 0.0
            && self.cfg.replay == 0.0
    }

    /// True if the plan can schedule replays (the engine only maintains
    /// its per-client upload cache when this holds).
    pub fn has_replay(&self) -> bool {
        self.cfg.replay > 0.0
    }

    /// The fault injected for `(round, client)`, if any.
    ///
    /// A single uniform draw is partitioned by the configured rates in a
    /// fixed order (dropout, straggler, corruption, replay); straggler
    /// delay and corruption kind come from follow-up draws on the same
    /// dedicated stream.
    pub fn fault_for(&self, round: usize, client: usize) -> Option<FaultKind> {
        if self.is_zero() {
            return None;
        }
        let mut rng =
            Xoshiro256pp::stream(self.cfg.seed, &[STREAM_FAULT, round as u64, client as u64]);
        let u = rng.next_f64();
        match rates::pick(
            u,
            &[
                self.cfg.dropout,
                self.cfg.straggler,
                self.cfg.corruption,
                self.cfg.replay,
            ],
        ) {
            Some(0) => Some(FaultKind::Dropout),
            Some(1) => {
                let delay = 1 + rng.index(self.cfg.max_delay);
                Some(FaultKind::Straggler { delay })
            }
            Some(2) => {
                let kind = match rng.index(3) {
                    0 => Corruption::NanInject,
                    1 => Corruption::SignFlip,
                    _ => Corruption::NormBlowup,
                };
                Some(FaultKind::Corrupt(kind))
            }
            Some(3) => Some(FaultKind::Replay),
            _ => None,
        }
    }

    /// The faults scheduled for one round over the given sampled clients,
    /// as `(client, fault)` pairs in the order of `clients`.
    pub fn schedule(&self, round: usize, clients: &[usize]) -> Vec<(usize, FaultKind)> {
        clients
            .iter()
            .filter_map(|&c| self.fault_for(round, c).map(|f| (c, f)))
            .collect()
    }
}

/// Apply `corruption` to a delta in place (the transport-layer damage the
/// engine injects between client emission and server aggregation).
pub fn corrupt_delta(delta: &mut [f32], corruption: Corruption) {
    match corruption {
        Corruption::NanInject => {
            if let Some(d) = delta.first_mut() {
                *d = f32::NAN;
            }
        }
        Corruption::SignFlip => {
            for d in delta.iter_mut() {
                *d = -*d;
            }
        }
        Corruption::NormBlowup => {
            for d in delta.iter_mut() {
                *d *= 1e12;
            }
        }
    }
}

/// The staleness discount applied to a delta arriving `s` rounds late:
/// `1/(1+s)`. A fresh delta (`s = 0`) is undiscounted.
pub fn staleness_discount(s: usize) -> f32 {
    1.0 / (1.0 + s as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaos_cfg(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            dropout: 0.3,
            straggler: 0.1,
            max_delay: 3,
            corruption: 0.05,
            replay: 0.05,
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let a = FaultPlan::new(chaos_cfg(7));
        let b = FaultPlan::new(chaos_cfg(7));
        for round in 0..50 {
            for client in 0..20 {
                assert_eq!(a.fault_for(round, client), b.fault_for(round, client));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::new(chaos_cfg(1));
        let b = FaultPlan::new(chaos_cfg(2));
        let clients: Vec<usize> = (0..30).collect();
        let differs = (0..30).any(|r| a.schedule(r, &clients) != b.schedule(r, &clients));
        assert!(
            differs,
            "seeds 1 and 2 produced identical 900-cell schedules"
        );
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let plan = FaultPlan::zero(99);
        assert!(plan.is_zero());
        assert!(!plan.has_replay());
        for round in 0..100 {
            for client in 0..20 {
                assert_eq!(plan.fault_for(round, client), None);
            }
        }
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::new(chaos_cfg(42));
        let trials = 20_000usize;
        let mut counts = [0usize; 4]; // dropout, straggler, corrupt, replay
        for i in 0..trials {
            match plan.fault_for(i / 100, i % 100) {
                Some(FaultKind::Dropout) => counts[0] += 1,
                Some(FaultKind::Straggler { delay }) => {
                    assert!((1..=3).contains(&delay));
                    counts[1] += 1;
                }
                Some(FaultKind::Corrupt(_)) => counts[2] += 1,
                Some(FaultKind::Replay) => counts[3] += 1,
                None => {}
            }
        }
        let frac = |c: usize| c as f64 / trials as f64;
        assert!(
            (frac(counts[0]) - 0.3).abs() < 0.02,
            "dropout {}",
            frac(counts[0])
        );
        assert!(
            (frac(counts[1]) - 0.1).abs() < 0.02,
            "straggler {}",
            frac(counts[1])
        );
        assert!(
            (frac(counts[2]) - 0.05).abs() < 0.01,
            "corrupt {}",
            frac(counts[2])
        );
        assert!(
            (frac(counts[3]) - 0.05).abs() < 0.01,
            "replay {}",
            frac(counts[3])
        );
    }

    #[test]
    fn corruption_kinds_behave() {
        let mut d = vec![1.0f32, -2.0, 3.0];
        corrupt_delta(&mut d, Corruption::SignFlip);
        assert_eq!(d, vec![-1.0, 2.0, -3.0]);
        corrupt_delta(&mut d, Corruption::NormBlowup);
        assert_eq!(d[1], 2.0e12);
        corrupt_delta(&mut d, Corruption::NanInject);
        assert!(d[0].is_nan());
        // Empty deltas are fine.
        corrupt_delta(&mut [], Corruption::NanInject);
    }

    #[test]
    fn staleness_discount_decays() {
        assert_eq!(staleness_discount(0), 1.0);
        assert_eq!(staleness_discount(1), 0.5);
        assert!(staleness_discount(3) < staleness_discount(2));
    }

    #[test]
    #[should_panic]
    fn rates_over_one_rejected() {
        let mut cfg = chaos_cfg(1);
        cfg.dropout = 0.9;
        cfg.straggler = 0.9;
        FaultPlan::new(cfg);
    }

    #[test]
    #[should_panic]
    fn negative_rate_rejected() {
        let mut cfg = FaultConfig::zero(1);
        cfg.replay = -0.1;
        FaultPlan::new(cfg);
    }
}
