//! FedAvgM / SlowMo-style server momentum (Wang et al., 2019; Reddi et
//! al., 2020): clients run plain local SGD, the server applies a
//! heavy-ball update over the aggregated deltas.

use fedwcm_fl::algorithm::{
    server_step, state_from_vec, state_to_vec, uniform_average, FederatedAlgorithm, RoundInput,
    RoundLog, StateError,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_nn::loss::CrossEntropy;
use fedwcm_nn::opt::server_momentum;

/// Server-side momentum: `m ← β·m + Δ̄`, step along `m`.
pub struct FedAvgM {
    /// Server momentum coefficient β (typical 0.9).
    pub beta: f32,
    buffer: Vec<f32>,
}

impl FedAvgM {
    /// New server-momentum algorithm.
    pub fn new(beta: f32) -> Self {
        assert!((0.0..1.0).contains(&beta), "beta must be in [0,1)");
        FedAvgM {
            beta,
            buffer: Vec::new(),
        }
    }
}

impl FederatedAlgorithm for FedAvgM {
    fn name(&self) -> String {
        format!("FedAvgM(beta={})", self.beta)
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        run_local_sgd(env, global, &spec, |_, _, _| {})
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        let mut dir = vec![0.0f32; global.len()];
        uniform_average(&input.updates, &mut dir);
        if self.buffer.is_empty() {
            self.buffer = vec![0.0f32; global.len()];
        }
        server_momentum(&mut self.buffer, &dir, self.beta);
        // Scale by (1−β) so the stationary step size matches FedAvg's.
        let step_dir: Vec<f32> = self.buffer.iter().map(|&m| m * (1.0 - self.beta)).collect();
        server_step(global, &step_dir, input.cfg, input.mean_batches());
        RoundLog::default()
    }

    // β is construction-time configuration; the heavy-ball buffer is the
    // only cross-round state.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(state_from_vec(&self.buffer))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        self.buffer = state_to_vec(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{build_sim, small_task};

    #[test]
    fn learns_balanced_task() {
        let (train, test, cfg) = small_task(51, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.6);
        let h = sim.run(&mut FedAvgM::new(0.9));
        assert!(h.final_accuracy(1) > 0.5, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn beta_zero_equals_fedavg() {
        let (train, test, cfg) = small_task(52, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.6);
        let hm = sim.run(&mut FedAvgM::new(0.0));
        let ha = sim.run(&mut crate::FedAvg::new());
        for (a, b) in hm.records.iter().zip(&ha.records) {
            assert_eq!(a.test_acc, b.test_acc);
        }
    }
}
