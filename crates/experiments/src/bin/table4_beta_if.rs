//! Table 4: β ∈ {0.1, 0.6} × IF ∈ {1, 0.4, 0.1, 0.06, 0.04, 0.01} for
//! FedAvg / FedCM / FedWCM on CIFAR-10.

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::{print_table, run_cell};
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let methods = [Method::FedAvg, Method::FedCm, Method::FedWcm];
    let ifs = [1.0, 0.4, 0.1, 0.06, 0.04, 0.01];
    for beta in [0.1, 0.6] {
        let headers: Vec<String> = ifs.iter().map(|v| format!("IF={v}")).collect();
        let mut rows = Vec::new();
        for m in methods {
            let values: Vec<f64> = ifs
                .iter()
                .map(|&imb| {
                    let exp =
                        ExpConfig::new(DatasetPreset::Cifar10, imb, beta, cli.scale, cli.seed);
                    run_cell(&exp, m, &cli)
                })
                .collect();
            console.info(format!("[table4] beta={beta} {} done", m.label()));
            rows.push((m.label().to_string(), values));
        }
        print_table(&format!("Table 4 — beta={beta}"), &headers, &rows);
    }
    println!(
        "\nExpected shape (paper Table 4): FedWCM best across the grid;\n\
         FedCM collapses for IF ≤ 0.1; FedWCM's decline with IF is mildest."
    );
}
