//! Experiment harness: shared machinery for the per-table/figure binaries.
//!
//! Every binary follows the same pattern: parse CLI flags ([`cli`]),
//! build a federated task from a preset ([`setup`]), instantiate methods
//! by name ([`methods`]), run, and print the table rows / figure series
//! the paper reports ([`report`]).
//!
//! Scales: `--smoke` (seconds; CI), `--quick` (default; minutes),
//! `--paper-scale` (the paper's client counts and round budgets; hours on
//! a laptop). Scale changes sizes only — never the algorithms.

#![warn(missing_docs)]

pub mod cli;
pub mod collapse;
pub mod methods;
pub mod prof;
pub mod report;
pub mod setup;

pub use cli::{parse_args, Cli, Scale};
pub use methods::{build_method, Method};
pub use setup::{ExpConfig, PreparedTask};
