//! Method registry: build any algorithm the paper evaluates by name.

use crate::setup::PreparedTask;
use fedwcm_algos::{
    FedAvg, FedAvgM, FedCm, FedDyn, FedLesam, FedProx, FedSam, FedSmoo, FedSpeed, MoFedSam,
};
use fedwcm_core::{FedWcm, FedWcmOptions, FedWcmX};
use fedwcm_fl::FederatedAlgorithm;
use fedwcm_longtail::{fedcm_balance_loss, fedcm_balance_sampler, fedcm_focal, BalanceFl, FedGrab};

/// FedCM's paper-default momentum value.
pub const FEDCM_ALPHA: f32 = 0.1;

/// Every method appearing in the paper's tables and figures.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Method {
    FedAvg,
    BalanceFl,
    FedGrab,
    FedCm,
    FedCmFocal,
    FedCmBalanceLoss,
    FedCmBalanceSampler,
    FedWcm,
    FedWcmX,
    FedProx,
    Scaffold,
    FedDyn,
    FedAvgM,
    FedSam,
    MoFedSam,
    FedSpeed,
    FedSmoo,
    FedLesam,
    MimeLite,
}

impl Method {
    /// The seven columns of Table 1/7, in paper order.
    pub fn table1() -> [Method; 7] {
        [
            Method::FedAvg,
            Method::BalanceFl,
            Method::FedGrab,
            Method::FedCm,
            Method::FedCmFocal,
            Method::FedCmBalanceLoss,
            Method::FedCmBalanceSampler,
        ]
    }

    /// The heterogeneous-FL lineup of Figs. 18/19.
    pub fn hetero_panel() -> [Method; 10] {
        [
            Method::FedAvg,
            Method::FedCm,
            Method::Scaffold,
            Method::FedDyn,
            Method::FedProx,
            Method::FedSam,
            Method::MoFedSam,
            Method::FedSpeed,
            Method::FedSmoo,
            Method::FedLesam,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            Method::FedAvg => "FedAvg",
            Method::BalanceFl => "BalanceFL",
            Method::FedGrab => "FedGrab",
            Method::FedCm => "FedCM",
            Method::FedCmFocal => "FedCM+FocalLoss",
            Method::FedCmBalanceLoss => "FedCM+BalanceLoss",
            Method::FedCmBalanceSampler => "FedCM+BalanceSampler",
            Method::FedWcm => "FedWCM",
            Method::FedWcmX => "FedWCM-X",
            Method::FedProx => "FedProx",
            Method::Scaffold => "SCAFFOLD",
            Method::FedDyn => "FedDyn",
            Method::FedAvgM => "FedAvgM",
            Method::FedSam => "FedSAM",
            Method::MoFedSam => "MoFedSAM",
            Method::FedSpeed => "FedSpeed-lite",
            Method::FedSmoo => "FedSMOO-lite",
            Method::FedLesam => "FedLESAM-lite",
            Method::MimeLite => "Mime-lite",
        }
    }
}

/// Instantiate a method for the given task (some need global counts or
/// client counts from the task).
pub fn build_method(method: Method, task: &PreparedTask) -> Box<dyn FederatedAlgorithm> {
    match method {
        Method::FedAvg => Box::new(FedAvg::new()),
        Method::BalanceFl => Box::new(BalanceFl::new()),
        Method::FedGrab => Box::new(FedGrab::new(task.global_counts())),
        Method::FedCm => Box::new(FedCm::new(FEDCM_ALPHA)),
        Method::FedCmFocal => Box::new(fedcm_focal(FEDCM_ALPHA)),
        Method::FedCmBalanceLoss => {
            Box::new(fedcm_balance_loss(FEDCM_ALPHA, &task.global_counts()))
        }
        Method::FedCmBalanceSampler => Box::new(fedcm_balance_sampler(FEDCM_ALPHA)),
        Method::FedWcm => Box::new(FedWcm::with_options(FedWcmOptions::default())),
        Method::FedWcmX => Box::new(FedWcmX::new(task.standard_batches())),
        Method::FedProx => Box::new(FedProx::new(0.01)),
        Method::Scaffold => Box::new(fedwcm_algos::Scaffold::new(task.fl.clients)),
        Method::FedDyn => Box::new(FedDyn::new(0.1, task.fl.clients)),
        Method::FedAvgM => Box::new(FedAvgM::new(0.9)),
        Method::FedSam => Box::new(FedSam::new(0.05)),
        Method::MoFedSam => Box::new(MoFedSam::new(0.05, FEDCM_ALPHA)),
        Method::FedSpeed => Box::new(FedSpeed::new(0.05, 0.01)),
        Method::FedSmoo => Box::new(FedSmoo::new(0.05, 0.01, task.fl.clients)),
        Method::FedLesam => Box::new(FedLesam::new(0.05)),
        Method::MimeLite => Box::new(fedwcm_algos::MimeLite::new(0.9, FEDCM_ALPHA)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::Scale;
    use crate::setup::ExpConfig;
    use fedwcm_data::synth::DatasetPreset;

    #[test]
    fn every_method_instantiates_and_labels() {
        let exp = ExpConfig::new(DatasetPreset::FashionMnist, 0.5, 0.6, Scale::Smoke, 9);
        let task = exp.prepare();
        let all = [
            Method::FedAvg,
            Method::BalanceFl,
            Method::FedGrab,
            Method::FedCm,
            Method::FedCmFocal,
            Method::FedCmBalanceLoss,
            Method::FedCmBalanceSampler,
            Method::FedWcm,
            Method::FedWcmX,
            Method::FedProx,
            Method::Scaffold,
            Method::FedDyn,
            Method::FedAvgM,
            Method::FedSam,
            Method::MoFedSam,
            Method::FedSpeed,
            Method::FedSmoo,
            Method::FedLesam,
            Method::MimeLite,
        ];
        for m in all {
            let algo = build_method(m, &task);
            assert!(!algo.name().is_empty());
            assert!(!m.label().is_empty());
        }
    }

    #[test]
    fn panels_have_expected_sizes() {
        assert_eq!(Method::table1().len(), 7);
        assert_eq!(Method::hetero_panel().len(), 10);
    }
}
