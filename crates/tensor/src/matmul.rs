//! Cache-blocked, row-parallel matrix multiplication kernels.
//!
//! Three variants cover every GEMM the NN library needs without
//! materialising transposes:
//!
//! * [`matmul`]        — `C = A·B`        (forward pass),
//! * [`matmul_a_bt`]   — `C = A·Bᵀ`       (forward with row-major weights,
//!   and backward data-gradient),
//! * [`matmul_at_b`]   — `C = Aᵀ·B`       (backward weight-gradient).
//!
//! The kernels use i-k-j loop order (unit-stride inner loop over the
//! output row) with an L1-sized k-blocking. This is not a hand-tuned BLAS,
//! but it is within a small factor of one and — critically for the
//! reproduction — fully deterministic.
//!
//! # Parallelism
//!
//! When the current thread carries an intra-task budget
//! ([`fedwcm_parallel::intra_threads`] > 1, scoped by the FL engine's
//! [`fedwcm_parallel::ThreadBudget`]) and the product is large enough to
//! amortise dispatch, the output rows are split into disjoint contiguous
//! chunks computed in parallel. Each output row is produced by exactly
//! one thread using the *same* per-row accumulation order as the
//! sequential kernel, so the result is **bitwise identical** for every
//! thread count — verified by differential tests.

use crate::tensor::Tensor;
use fedwcm_parallel::{intra_threads, parallel_over_rows};

/// Block size along k chosen so a block of B rows fits in L1.
const KB: usize = 256;

/// Minimum multiply-accumulate count before row-parallel dispatch pays
/// for itself; below this everything runs inline on the caller.
const PAR_FLOP_MIN: usize = 1 << 17;

/// Row-parallel worker count for a kernel with `rows` independent output
/// rows and `flops` multiply-accumulates: the scoped intra-task budget,
/// clamped to the row count, and 1 when the product is too small.
fn gemm_threads(rows: usize, flops: usize) -> usize {
    if flops < PAR_FLOP_MIN {
        return 1;
    }
    intra_threads().min(rows.max(1))
}

/// `C = A·B` for rank-2 tensors. Shapes: `[m,k]·[k,n] -> [m,n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (k2, n) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul inner dims differ: {k} vs {k2}");
    let mut c = Tensor::zeros(&[m, n]);
    matmul_into(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n);
    c
}

/// `C += A·B` on raw slices. `a` is `[m,k]`, `b` is `[k,n]`, `c` is `[m,n]`.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A buffer size");
    assert_eq!(b.len(), k * n, "B buffer size");
    assert_eq!(c.len(), m * n, "C buffer size");
    let threads = gemm_threads(m, m * k * n);
    if threads <= 1 {
        matmul_rows(a, b, c, 0, m, k, n);
        return;
    }
    parallel_over_rows(c, n, threads, |r0, r1, chunk| {
        matmul_rows(a, b, chunk, r0, r1, k, n)
    });
}

/// Rows `r0..r1` of `C += A·B`; `c_chunk` holds exactly those rows.
/// Per-row accumulation order (k-blocked, k-ascending) is independent of
/// the chunking, so any row partition reproduces the sequential result
/// bit for bit.
fn matmul_rows(
    a: &[f32],
    b: &[f32],
    c_chunk: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
) {
    for k0 in (0..k).step_by(KB) {
        let kend = (k0 + KB).min(k);
        for i in r0..r1 {
            let arow = &a[i * k..(i + 1) * k];
            let crow = &mut c_chunk[(i - r0) * n..(i - r0 + 1) * n];
            for kk in k0..kend {
                let aik = arow[kk];
                if aik == 0.0 {
                    continue;
                }
                let brow = &b[kk * n..(kk + 1) * n];
                for (cj, bj) in crow.iter_mut().zip(brow) {
                    *cj += aik * bj;
                }
            }
        }
    }
}

/// `C = A·Bᵀ`. Shapes: `[m,k]·([n,k])ᵀ -> [m,n]`.
///
/// Inner loop is a dot product over contiguous rows of both A and B —
/// ideal when B is a row-major weight matrix `[out, in]`.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, k2) = (b.rows(), b.cols());
    assert_eq!(k, k2, "matmul_a_bt inner dims differ: {k} vs {k2}");
    let mut c = Tensor::zeros(&[m, n]);
    matmul_a_bt_into(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n);
    c
}

/// `C += A·Bᵀ` on raw slices. `a` is `[m,k]`, `b` is `[n,k]`, `c` is `[m,n]`.
pub fn matmul_a_bt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A buffer size");
    assert_eq!(b.len(), n * k, "B buffer size");
    assert_eq!(c.len(), m * n, "C buffer size");
    let threads = gemm_threads(m, m * k * n);
    if threads <= 1 {
        matmul_a_bt_rows(a, b, c, 0, m, k, n);
        return;
    }
    parallel_over_rows(c, n, threads, |r0, r1, chunk| {
        matmul_a_bt_rows(a, b, chunk, r0, r1, k, n)
    });
}

/// Rows `r0..r1` of `C += A·Bᵀ`; each output row is a series of whole
/// dot products, so row partitioning cannot change any result bit.
fn matmul_a_bt_rows(
    a: &[f32],
    b: &[f32],
    c_chunk: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
) {
    for i in r0..r1 {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c_chunk[(i - r0) * n..(i - r0 + 1) * n];
        for (j, cij) in crow.iter_mut().enumerate() {
            *cij += crate::ops::dot(arow, &b[j * k..(j + 1) * k]);
        }
    }
}

/// `C = Aᵀ·B`. Shapes: `([m,k])ᵀ·[m,n] -> [k,n]`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (m2, n) = (b.rows(), b.cols());
    assert_eq!(m, m2, "matmul_at_b outer dims differ: {m} vs {m2}");
    let mut c = Tensor::zeros(&[k, n]);
    matmul_at_b_into(a.as_slice(), b.as_slice(), c.as_mut_slice(), m, k, n);
    c
}

/// `C += Aᵀ·B` on raw slices. `a` is `[m,k]`, `b` is `[m,n]`, `c` is `[k,n]`.
pub fn matmul_at_b_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "A buffer size");
    assert_eq!(b.len(), m * n, "B buffer size");
    assert_eq!(c.len(), k * n, "C buffer size");
    let threads = gemm_threads(k, m * k * n);
    if threads <= 1 {
        matmul_at_b_rows(a, b, c, 0..k, m, k, n);
        return;
    }
    parallel_over_rows(c, n, threads, |kk0, kk1, chunk| {
        matmul_at_b_rows(a, b, chunk, kk0..kk1, m, k, n)
    });
}

/// Output rows `kk0..kk1` of `C += Aᵀ·B`, accumulating rank-1 updates
/// sample by sample: for each `i`, `C[kk] += a[i,kk] ⊗ b[i]`. The
/// per-element accumulation order over `i` matches the sequential kernel
/// (i-outer) for every row partition — bitwise identical results.
fn matmul_at_b_rows(
    a: &[f32],
    b: &[f32],
    c_chunk: &mut [f32],
    rows: std::ops::Range<usize>,
    m: usize,
    k: usize,
    n: usize,
) {
    let kk0 = rows.start;
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let brow = &b[i * n..(i + 1) * n];
        for kk in rows.clone() {
            let aik = arow[kk];
            if aik == 0.0 {
                continue;
            }
            let crow = &mut c_chunk[(kk - kk0) * n..(kk - kk0 + 1) * n];
            for (cj, bj) in crow.iter_mut().zip(brow) {
                *cj += aik * bj;
            }
        }
    }
}

/// Reference O(n³) naive multiply, kept for differential testing.
pub fn matmul_naive(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let n = b.cols();
    assert_eq!(k, b.rows());
    let mut c = Tensor::zeros(&[m, n]);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += a.at(i, kk) * b.at(kk, j);
            }
            *c.at_mut(i, j) = acc;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_parallel::with_intra_threads;
    use fedwcm_stats::rng::Xoshiro256pp;

    #[test]
    fn small_known_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let mut rng = Xoshiro256pp::seed_from(1);
        let a = Tensor::randn(&[7, 7], 1.0, &mut rng);
        let mut eye = Tensor::zeros(&[7, 7]);
        for i in 0..7 {
            *eye.at_mut(i, i) = 1.0;
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&eye, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn blocked_matches_naive_rectangular() {
        let mut rng = Xoshiro256pp::seed_from(2);
        for (m, k, n) in [(1, 1, 1), (3, 5, 2), (17, 33, 9), (64, 300, 31)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let fast = matmul(&a, &b);
            let slow = matmul_naive(&a, &b);
            assert!(fast.max_abs_diff(&slow) < 1e-3, "({m},{k},{n})");
        }
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let mut rng = Xoshiro256pp::seed_from(3);
        let a = Tensor::randn(&[11, 23], 1.0, &mut rng);
        let b = Tensor::randn(&[6, 23], 1.0, &mut rng);
        let via_t = matmul(&a, &b.transpose());
        let direct = matmul_a_bt(&a, &b);
        assert!(direct.max_abs_diff(&via_t) < 1e-4);
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let mut rng = Xoshiro256pp::seed_from(4);
        let a = Tensor::randn(&[19, 7], 1.0, &mut rng);
        let b = Tensor::randn(&[19, 5], 1.0, &mut rng);
        let via_t = matmul(&a.transpose(), &b);
        let direct = matmul_at_b(&a, &b);
        assert!(direct.max_abs_diff(&via_t) < 1e-4);
    }

    #[test]
    fn matmul_associates_with_tolerance() {
        let mut rng = Xoshiro256pp::seed_from(5);
        let a = Tensor::randn(&[8, 9], 0.5, &mut rng);
        let b = Tensor::randn(&[9, 10], 0.5, &mut rng);
        let c = Tensor::randn(&[10, 4], 0.5, &mut rng);
        let l = matmul(&matmul(&a, &b), &c);
        let r = matmul(&a, &matmul(&b, &c));
        assert!(l.max_abs_diff(&r) < 1e-3);
    }

    #[test]
    fn row_parallel_bitwise_matches_sequential() {
        // Shapes chosen to clear PAR_FLOP_MIN so the parallel path is
        // genuinely active, including ragged row counts (m < threads
        // after clamping, rows not divisible by the chunk count).
        let mut rng = Xoshiro256pp::seed_from(6);
        for (m, k, n) in [(64, 80, 48), (3, 512, 96), (37, 64, 101), (128, 33, 65)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let bt = Tensor::randn(&[n, k], 1.0, &mut rng);
            let bb = Tensor::randn(&[m, n], 1.0, &mut rng);
            let gold_ab = with_intra_threads(1, || matmul(&a, &b));
            let gold_abt = with_intra_threads(1, || matmul_a_bt(&a, &bt));
            let gold_atb = with_intra_threads(1, || matmul_at_b(&a, &bb));
            for threads in [2, 3, 5, 8, 64] {
                let (p_ab, p_abt, p_atb) = with_intra_threads(threads, || {
                    (matmul(&a, &b), matmul_a_bt(&a, &bt), matmul_at_b(&a, &bb))
                });
                for (gold, par, name) in [
                    (&gold_ab, &p_ab, "matmul"),
                    (&gold_abt, &p_abt, "matmul_a_bt"),
                    (&gold_atb, &p_atb, "matmul_at_b"),
                ] {
                    assert_eq!(gold.shape(), par.shape());
                    for (g, p) in gold.as_slice().iter().zip(par.as_slice()) {
                        assert_eq!(
                            g.to_bits(),
                            p.to_bits(),
                            "{name} ({m},{k},{n}) threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiny_products_stay_inline() {
        // Below the flop floor the kernels must not dispatch (threads=1
        // path); the result is the same object either way — this guards
        // the threshold arithmetic against over/underflow.
        assert_eq!(gemm_threads(4, PAR_FLOP_MIN - 1), 1);
        assert_eq!(with_intra_threads(8, || gemm_threads(4, PAR_FLOP_MIN)), 4);
        assert_eq!(with_intra_threads(8, || gemm_threads(16, PAR_FLOP_MIN)), 8);
        assert_eq!(gemm_threads(0, usize::MAX), 1);
    }

    #[test]
    #[should_panic]
    fn dim_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }
}
