//! General-purpose runner: any method × dataset × (IF, β) combination
//! from the command line.
//!
//! ```sh
//! cargo run --release -p fedwcm-experiments --bin flrun -- \
//!     --method fedwcm --if 0.1 --beta 0.6 --dataset cifar-10 --rounds 100
//! ```

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::{print_metrics, run_history};
use fedwcm_experiments::{Cli, ExpConfig, Method, Scale};

fn parse_method(name: &str) -> Option<Method> {
    Some(match name.to_ascii_lowercase().as_str() {
        "fedavg" => Method::FedAvg,
        "balancefl" => Method::BalanceFl,
        "fedgrab" => Method::FedGrab,
        "fedcm" => Method::FedCm,
        "fedcm+focal" | "fedcm-focal" => Method::FedCmFocal,
        "fedcm+balanceloss" | "fedcm-balanceloss" => Method::FedCmBalanceLoss,
        "fedcm+balancesampler" | "fedcm-balancesampler" => Method::FedCmBalanceSampler,
        "fedwcm" => Method::FedWcm,
        "fedwcm-x" | "fedwcmx" => Method::FedWcmX,
        "fedprox" => Method::FedProx,
        "scaffold" => Method::Scaffold,
        "feddyn" => Method::FedDyn,
        "fedavgm" => Method::FedAvgM,
        "fedsam" => Method::FedSam,
        "mofedsam" => Method::MoFedSam,
        "fedspeed" => Method::FedSpeed,
        "fedsmoo" => Method::FedSmoo,
        "fedlesam" => Method::FedLesam,
        "mime" | "mime-lite" => Method::MimeLite,
        _ => return None,
    })
}

fn parse_preset(name: &str) -> Option<DatasetPreset> {
    DatasetPreset::all()
        .into_iter()
        .find(|p| p.spec().name.contains(&name.to_ascii_lowercase()))
}

fn main() {
    // Extract flrun-specific flags, pass the rest to the shared parser.
    let mut method = Method::FedWcm;
    let mut preset = DatasetPreset::Cifar10;
    let mut imbalance = 0.1f64;
    let mut beta = 0.1f64;
    let mut fedgrab_part = false;
    let mut passthrough = vec!["flrun".to_string()];
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--method" => {
                let v = args.next().expect("--method needs a name");
                method = parse_method(&v).unwrap_or_else(|| {
                    eprintln!("unknown method {v}");
                    std::process::exit(2);
                });
            }
            "--if" => {
                imbalance = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--if needs a number in (0,1]");
            }
            "--beta" => {
                beta = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--beta needs a positive number");
            }
            "--dataset" => {
                let v = args.next().expect("--dataset needs a name");
                preset = parse_preset(&v).unwrap_or_else(|| {
                    eprintln!("unknown dataset {v} (presets: fashion-mnist, svhn, cifar-10, cifar-100, imagenet-lite)");
                    std::process::exit(2);
                });
            }
            "--fedgrab-partition" => fedgrab_part = true,
            other => passthrough.push(other.to_string()),
        }
    }
    let cli: Cli = fedwcm_experiments::parse_args(passthrough);

    let mut exp = ExpConfig::new(preset, imbalance, beta, cli.scale, cli.seed);
    exp.fedgrab_partition = fedgrab_part;
    if cli.scale == Scale::Quick && cli.rounds.is_none() {
        // flrun default: a medium budget.
        exp.rounds = 100;
    }
    println!(
        "# {} on {} — IF={imbalance}, beta={beta}, {} clients, {} rounds, cadence={}",
        method.label(),
        preset.spec().name,
        exp.clients,
        cli.rounds.unwrap_or(exp.rounds),
        cli.cadence.label(),
    );
    let h = run_history(&exp, method, &cli);
    let aggregations: u32 = h.records.iter().map(|r| r.aggregations).sum();
    println!(
        "aggregation events: {aggregations} over {} rounds",
        h.records.len()
    );
    println!("\nround,accuracy");
    for (r, a) in h.accuracy_series() {
        println!("{r},{a:.4}");
    }
    println!("\nfinal accuracy (3-eval mean): {:.4}", h.final_accuracy(3));
    println!("best accuracy:               {:.4}", h.best_accuracy());
    if let Some(r) = h.rounds_to_reach(h.best_accuracy() * 0.9) {
        println!("rounds to 90% of best:       {r}");
    }
    print_metrics(&h);
}
