//! `doc-coverage`: public items in the API-bearing crates (`tensor`,
//! `fl`, `core`, `parallel`) must carry rustdoc. These four crates are
//! the surface other crates build on; an undocumented public function
//! there is an invitation to misuse the determinism and threading
//! contracts the docs encode.
//!
//! A "public item" is a `pub` keyword (not `pub(crate)` / `pub(super)` /
//! `pub(in …)`) directly followed by an item keyword (`fn`, `struct`,
//! `enum`, `trait`, `type`, `const`, `static`, `mod`, `union`). Public
//! fields and re-exports (`pub use`) are exempt — re-exports inherit
//! the origin's docs. The doc comment may be any of `///`, `/** */`, or
//! a `#[doc = …]` attribute, optionally separated from the item by
//! other attributes.

use crate::engine::{Diagnostic, FileCtx, DOC_CRATES};
use crate::lexer::TokKind;

const RULE: &str = "doc-coverage";

const ITEM_KEYWORDS: &[&str] = &[
    "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union", "unsafe", "async",
];

/// Run the doc-coverage rule over one file.
pub fn check_doc_coverage(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if !ctx
        .crate_name
        .as_deref()
        .is_some_and(|c| DOC_CRATES.contains(&c))
    {
        return;
    }
    let toks = &ctx.toks;
    for (k, &i) in ctx.code.iter().enumerate() {
        let t = &toks[i];
        if !t.is_ident("pub") || ctx.is_test_line(t.line) {
            continue;
        }
        // Skip `pub(crate)` and friends: restricted visibility is not API.
        if ctx.code.get(k + 1).is_some_and(|&j| toks[j].is_punct('(')) {
            continue;
        }
        // The token after `pub` (skipping `unsafe`/`async`/`extern` etc.
        // qualifiers) must be an item keyword; `pub use` and struct
        // fields (`pub name:`) are exempt.
        let mut m = k + 1;
        let mut item_kw: Option<&str> = None;
        while let Some(&j) = ctx.code.get(m) {
            let tj = &toks[j];
            if tj.kind != TokKind::Ident {
                break;
            }
            match tj.text.as_str() {
                "unsafe" | "async" | "extern" => m += 1,
                kw if ITEM_KEYWORDS.contains(&kw) => {
                    item_kw = Some(&tj.text);
                    break;
                }
                _ => break,
            }
        }
        let Some(item_kw) = item_kw else { continue };
        // Out-of-line modules (`pub mod x;`) document themselves with
        // `//!` inner docs in their own file; only inline `pub mod x {}`
        // needs a doc comment here.
        if item_kw == "mod" {
            let mut n = m + 1;
            let mut out_of_line = false;
            while let Some(&j) = ctx.code.get(n) {
                match toks[j].kind {
                    TokKind::Punct(';') => {
                        out_of_line = true;
                        break;
                    }
                    TokKind::Punct('{') => break,
                    _ => n += 1,
                }
            }
            if out_of_line {
                continue;
            }
        }
        // Item name for the message (the ident after the keyword, if any).
        let name = ctx
            .code
            .get(m + 1)
            .map(|&j| &toks[j])
            .filter(|n| n.kind == TokKind::Ident)
            .map(|n| n.text.clone())
            .unwrap_or_default();

        if has_preceding_doc(ctx, i) {
            continue;
        }
        diags.push(ctx.diag(
            RULE,
            t.line,
            format!(
                "public {item_kw} `{name}` lacks rustdoc; {} is an API crate — document the \
                 contract (shapes, determinism, panics) before exporting it",
                ctx.crate_name.as_deref().unwrap_or("this"),
            ),
        ));
    }
}

/// Walk backwards from the token at full-stream index `i`, skipping
/// plain comments and attribute groups, looking for a doc comment or a
/// `#[doc…]` attribute.
fn has_preceding_doc(ctx: &FileCtx, i: usize) -> bool {
    let toks = &ctx.toks;
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &toks[j];
        if t.is_doc_comment() {
            return true;
        }
        if t.is_comment() {
            continue;
        }
        if t.is_punct(']') {
            // Scan back to the matching `[`, remembering whether the
            // attribute is `#[doc…]`.
            let mut depth = 1usize;
            let mut first_ident: Option<&str> = None;
            while j > 0 && depth > 0 {
                j -= 1;
                match toks[j].kind {
                    TokKind::Punct(']') => depth += 1,
                    TokKind::Punct('[') => depth -= 1,
                    TokKind::Ident => first_ident = Some(&toks[j].text),
                    _ => {}
                }
            }
            // Consume the leading `#` (or `#!`).
            if j > 0 && toks[j - 1].is_punct('#') {
                j -= 1;
            } else if j > 1 && toks[j - 1].is_punct('!') && toks[j - 2].is_punct('#') {
                j -= 2;
            }
            if first_ident == Some("doc") {
                return true;
            }
            continue;
        }
        return false;
    }
    false
}
