//! Mini-batch samplers.
//!
//! [`BatchSampler`] is the standard shuffled-epoch iterator. The
//! [`BalanceSampler`] implements the "Balance Sampler" baseline from the
//! paper's tables: classes are drawn uniformly, then a sample uniformly
//! within the class — class-balanced resampling on the client's local data.

use crate::dataset::Dataset;
use fedwcm_stats::rng::{Rng, Xoshiro256pp};

/// Shuffled mini-batch iterator over a set of sample indices.
///
/// Each epoch reshuffles; the final short batch is kept (standard
/// drop_last=false behaviour).
pub struct BatchSampler {
    indices: Vec<usize>,
    batch_size: usize,
    cursor: usize,
    rng: Xoshiro256pp,
}

impl BatchSampler {
    /// Create a sampler over `indices` with the given batch size.
    pub fn new(indices: &[usize], batch_size: usize, rng: Xoshiro256pp) -> Self {
        assert!(batch_size >= 1, "batch size must be ≥ 1");
        assert!(!indices.is_empty(), "cannot sample from empty index set");
        let mut s = BatchSampler {
            indices: indices.to_vec(),
            batch_size,
            cursor: 0,
            rng,
        };
        s.rng.shuffle(&mut s.indices);
        s
    }

    /// Number of batches per epoch (`B_k` in the paper: ⌈n_k / batch⌉).
    pub fn batches_per_epoch(&self) -> usize {
        self.indices.len().div_ceil(self.batch_size)
    }

    /// Next mini-batch of indices; reshuffles at epoch boundaries.
    pub fn next_batch(&mut self) -> Vec<usize> {
        if self.cursor >= self.indices.len() {
            self.rng.shuffle(&mut self.indices);
            self.cursor = 0;
        }
        let end = (self.cursor + self.batch_size).min(self.indices.len());
        let batch = self.indices[self.cursor..end].to_vec();
        self.cursor = end;
        batch
    }
}

/// Class-balanced resampler over a client's local data: pick a class
/// uniformly among locally-present classes, then a sample uniformly within
/// it (with replacement).
pub struct BalanceSampler {
    per_class: Vec<Vec<usize>>,
    batch_size: usize,
    rng: Xoshiro256pp,
}

impl BalanceSampler {
    /// Build from the client's indices and the master dataset's labels.
    pub fn new(indices: &[usize], dataset: &Dataset, batch_size: usize, rng: Xoshiro256pp) -> Self {
        assert!(batch_size >= 1, "batch size must be ≥ 1");
        assert!(!indices.is_empty(), "cannot sample from empty index set");
        let mut per_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.classes()];
        for &i in indices {
            per_class[dataset.label(i)].push(i);
        }
        per_class.retain(|v| !v.is_empty());
        BalanceSampler {
            per_class,
            batch_size,
            rng,
        }
    }

    /// Next balanced mini-batch of indices.
    pub fn next_batch(&mut self) -> Vec<usize> {
        let mut batch = Vec::with_capacity(self.batch_size);
        for _ in 0..self.batch_size {
            let class = self.rng.index(self.per_class.len());
            let pool = &self.per_class[class];
            batch.push(pool[self.rng.index(pool.len())]);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_tensor::Tensor;

    fn toy_dataset() -> Dataset {
        // 12 samples: 8 of class 0, 3 of class 1, 1 of class 2.
        let labels = vec![0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 2];
        let x = Tensor::zeros(&[12, 2]);
        Dataset::new(x, labels, 3)
    }

    #[test]
    fn batch_sampler_covers_epoch() {
        let indices: Vec<usize> = (0..10).collect();
        let mut s = BatchSampler::new(&indices, 3, Xoshiro256pp::seed_from(1));
        assert_eq!(s.batches_per_epoch(), 4);
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.extend(s.next_batch());
        }
        seen.sort_unstable();
        assert_eq!(seen, indices);
    }

    #[test]
    fn batch_sampler_reshuffles_across_epochs() {
        let indices: Vec<usize> = (0..64).collect();
        let mut s = BatchSampler::new(&indices, 64, Xoshiro256pp::seed_from(2));
        let e1 = s.next_batch();
        let e2 = s.next_batch();
        assert_ne!(e1, e2);
        let mut sorted = e2.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, indices);
    }

    #[test]
    fn batch_sampler_short_final_batch() {
        let indices: Vec<usize> = (0..5).collect();
        let mut s = BatchSampler::new(&indices, 2, Xoshiro256pp::seed_from(3));
        assert_eq!(s.next_batch().len(), 2);
        assert_eq!(s.next_batch().len(), 2);
        assert_eq!(s.next_batch().len(), 1);
    }

    #[test]
    fn balance_sampler_equalises_classes() {
        let ds = toy_dataset();
        let indices: Vec<usize> = (0..12).collect();
        let mut s = BalanceSampler::new(&indices, &ds, 30, Xoshiro256pp::seed_from(4));
        let mut counts = [0usize; 3];
        for _ in 0..200 {
            for i in s.next_batch() {
                counts[ds.label(i)] += 1;
            }
        }
        let total: usize = counts.iter().sum();
        for &c in &counts {
            let frac = c as f64 / total as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.03, "class frac {frac}");
        }
    }

    #[test]
    fn balance_sampler_skips_absent_classes() {
        let ds = toy_dataset();
        // Client only holds classes 0 and 1.
        let indices = vec![0, 1, 8];
        let mut s = BalanceSampler::new(&indices, &ds, 10, Xoshiro256pp::seed_from(5));
        for _ in 0..50 {
            for i in s.next_batch() {
                assert!(ds.label(i) <= 1);
            }
        }
    }

    #[test]
    #[should_panic]
    fn empty_indices_rejected() {
        let _ = BatchSampler::new(&[], 4, Xoshiro256pp::seed_from(6));
    }
}
