//! The [`Layer`] trait and parameter-free activation layers.

use fedwcm_stats::rng::Rng;
use fedwcm_stats::Xoshiro256pp;
use fedwcm_tensor::Tensor;

/// A differentiable layer operating on rank-2 batches `[batch, features]`.
///
/// Parameters live in the model's flat arena; each layer receives its own
/// slice (`params`) plus a matching gradient slice on the backward pass.
/// Layers may cache activations from the most recent `forward` call — the
/// model guarantees `backward` follows the corresponding `forward`.
///
/// Layers are `Send + Sync` and cloneable (via [`Layer::clone_box`]) so a
/// model can be duplicated per worker for read-only parallel evaluation.
pub trait Layer: Send + Sync {
    /// Human-readable layer name (used by the concentration analysis).
    fn name(&self) -> &'static str;

    /// Output feature count given the input feature count.
    fn out_features(&self, in_features: usize) -> usize;

    /// Number of parameters this layer owns in the arena.
    fn param_len(&self) -> usize {
        0
    }

    /// Initialise this layer's parameter slice.
    fn init_params(&self, _params: &mut [f32], _rng: &mut Xoshiro256pp) {}

    /// Forward pass. `train` toggles caching for backward.
    fn forward(&mut self, params: &[f32], input: &Tensor, train: bool) -> Tensor;

    /// Backward pass: accumulate parameter gradients into `grad_params`
    /// (same length as `params`) and return the input gradient.
    fn backward(&mut self, params: &[f32], grad_params: &mut [f32], grad_out: &Tensor) -> Tensor;

    /// Clone this layer behind a fresh box (object-safe `Clone`).
    fn clone_box(&self) -> Box<dyn Layer>;
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Rectified linear unit. Caches the activation mask.
#[derive(Clone, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// New ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn out_features(&self, in_features: usize) -> usize {
        in_features
    }

    fn forward(&mut self, _params: &[f32], input: &Tensor, train: bool) -> Tensor {
        let mut out = input.clone();
        if train {
            self.mask.clear();
            self.mask.reserve(out.len());
            for x in out.as_mut_slice() {
                let pos = *x > 0.0;
                self.mask.push(pos);
                if !pos {
                    *x = 0.0;
                }
            }
        } else {
            for x in out.as_mut_slice() {
                if *x < 0.0 {
                    *x = 0.0;
                }
            }
        }
        out
    }

    fn backward(&mut self, _params: &[f32], _grad_params: &mut [f32], grad_out: &Tensor) -> Tensor {
        assert_eq!(
            grad_out.len(),
            self.mask.len(),
            "ReLU backward without matching forward"
        );
        let mut g = grad_out.clone();
        for (x, &keep) in g.as_mut_slice().iter_mut().zip(&self.mask) {
            if !keep {
                *x = 0.0;
            }
        }
        g
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Leaky rectified linear unit: `max(x, slope·x)` with `slope < 1`.
#[derive(Clone)]
pub struct LeakyRelu {
    slope: f32,
    cached_input: Vec<f32>,
}

impl LeakyRelu {
    /// New leaky ReLU with the given negative-side slope (e.g. 0.01).
    pub fn new(slope: f32) -> Self {
        assert!((0.0..1.0).contains(&slope), "slope must be in [0,1)");
        LeakyRelu {
            slope,
            cached_input: Vec::new(),
        }
    }
}

impl Layer for LeakyRelu {
    fn name(&self) -> &'static str {
        "leaky_relu"
    }

    fn out_features(&self, in_features: usize) -> usize {
        in_features
    }

    fn forward(&mut self, _params: &[f32], input: &Tensor, train: bool) -> Tensor {
        if train {
            self.cached_input.clear();
            self.cached_input.extend_from_slice(input.as_slice());
        }
        let mut out = input.clone();
        for x in out.as_mut_slice() {
            if *x < 0.0 {
                *x *= self.slope;
            }
        }
        out
    }

    fn backward(&mut self, _params: &[f32], _grad_params: &mut [f32], grad_out: &Tensor) -> Tensor {
        assert_eq!(
            grad_out.len(),
            self.cached_input.len(),
            "leaky-relu backward without matching forward"
        );
        let mut g = grad_out.clone();
        for (x, &inp) in g.as_mut_slice().iter_mut().zip(&self.cached_input) {
            if inp < 0.0 {
                *x *= self.slope;
            }
        }
        g
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Hyperbolic-tangent activation.
#[derive(Clone, Default)]
pub struct Tanh {
    cached_output: Vec<f32>,
}

impl Tanh {
    /// New tanh layer.
    pub fn new() -> Self {
        Tanh::default()
    }
}

impl Layer for Tanh {
    fn name(&self) -> &'static str {
        "tanh"
    }

    fn out_features(&self, in_features: usize) -> usize {
        in_features
    }

    fn forward(&mut self, _params: &[f32], input: &Tensor, train: bool) -> Tensor {
        let mut out = input.clone();
        for x in out.as_mut_slice() {
            *x = x.tanh();
        }
        if train {
            self.cached_output.clear();
            self.cached_output.extend_from_slice(out.as_slice());
        }
        out
    }

    fn backward(&mut self, _params: &[f32], _grad_params: &mut [f32], grad_out: &Tensor) -> Tensor {
        assert_eq!(
            grad_out.len(),
            self.cached_output.len(),
            "tanh backward without matching forward"
        );
        let mut g = grad_out.clone();
        for (x, &y) in g.as_mut_slice().iter_mut().zip(&self.cached_output) {
            *x *= 1.0 - y * y;
        }
        g
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// He-normal weight initialisation std for a given fan-in.
pub fn he_std(fan_in: usize) -> f32 {
    (2.0 / fan_in.max(1) as f32).sqrt()
}

/// Fill a weight slice with `N(0, std²)` and a trailing bias with zeros.
pub fn init_weights_biases(
    params: &mut [f32],
    weight_len: usize,
    std: f32,
    rng: &mut Xoshiro256pp,
) {
    let (w, b) = params.split_at_mut(weight_len);
    let mut normal = fedwcm_stats::dist::Normal::new(0.0, std as f64);
    for x in w {
        *x = normal.sample(rng) as f32;
    }
    b.fill(0.0);
    let _ = rng.next_u64(); // decouple successive layer streams
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_clamps() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0, -3.0], &[1, 4]);
        let y = relu.forward(&[], &x, true);
        assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn relu_backward_masks() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 1.0, 2.0, -0.5], &[1, 4]);
        let _ = relu.forward(&[], &x, true);
        let g = Tensor::from_vec(vec![10.0, 20.0, 30.0, 40.0], &[1, 4]);
        let gx = relu.backward(&[], &mut [], &g);
        assert_eq!(gx.as_slice(), &[0.0, 20.0, 30.0, 0.0]);
    }

    #[test]
    fn relu_eval_mode_no_cache() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 1.0], &[1, 2]);
        let y = relu.forward(&[], &x, false);
        assert_eq!(y.as_slice(), &[0.0, 1.0]);
        assert!(relu.mask.is_empty());
    }

    #[test]
    fn he_std_decreases_with_fan_in() {
        assert!(he_std(10) > he_std(1000));
        assert!((he_std(2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn leaky_relu_forward_backward() {
        let mut l = LeakyRelu::new(0.1);
        let x = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[1, 3]);
        let y = l.forward(&[], &x, true);
        assert_eq!(y.as_slice(), &[-0.2, 0.0, 3.0]);
        let g = Tensor::from_vec(vec![10.0, 10.0, 10.0], &[1, 3]);
        let gx = l.backward(&[], &mut [], &g);
        assert_eq!(gx.as_slice(), &[1.0, 10.0, 10.0]);
    }

    #[test]
    fn leaky_relu_zero_slope_equals_relu() {
        let mut leaky = LeakyRelu::new(0.0);
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![-1.5, 0.5, -0.1, 2.0], &[1, 4]);
        assert_eq!(
            leaky.forward(&[], &x, false).as_slice(),
            relu.forward(&[], &x, false).as_slice()
        );
    }

    #[test]
    fn tanh_forward_bounded_backward_fd() {
        let mut t = Tanh::new();
        let x = Tensor::from_vec(vec![-3.0, -0.5, 0.0, 0.5, 3.0], &[1, 5]);
        let y = t.forward(&[], &x, true);
        assert!(y.as_slice().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        assert_eq!(y.as_slice()[2], 0.0);
        // Finite-difference check of the tanh derivative.
        let g = Tensor::from_vec(vec![1.0; 5], &[1, 5]);
        let gx = t.backward(&[], &mut [], &g);
        let eps = 1e-3f32;
        for i in 0..5 {
            let fd =
                ((x.as_slice()[i] + eps).tanh() - (x.as_slice()[i] - eps).tanh()) / (2.0 * eps);
            assert!((gx.as_slice()[i] - fd).abs() < 1e-3, "unit {i}");
        }
    }
}
