//! NaN-injection regression test for the `debug_invariants` feature.
//!
//! One client's delta is corrupted with NaN mid-round. The expected
//! behaviour diverges by build:
//!
//! * **`debug_invariants`** — the engine panics at the server-aggregation
//!   boundary, and the panic message pins the blame: which client, which
//!   round, and that it happened entering aggregation.
//! * **release (default)** — the containment filter silently drops the
//!   poisoned update and the run completes with finite metrics,
//!   unaffected by the corruption.
//!
//! Run both sides with:
//! `cargo test -p fedwcm-fl --test nan_injection`
//! `cargo test -p fedwcm-fl --test nan_injection --features debug_invariants`

use fedwcm_data::dataset::Dataset;
use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::partition::paper_partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_fl::algorithm::{
    server_step, uniform_average, FederatedAlgorithm, RoundInput, RoundLog,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_fl::config::FlConfig;
use fedwcm_fl::engine::Simulation;
use fedwcm_nn::loss::CrossEntropy;
use fedwcm_nn::models::mlp;
use fedwcm_stats::rng::Xoshiro256pp;

/// Which client gets its delta corrupted.
const POISONED_CLIENT: usize = 2;

/// FedAvg whose designated client emits a NaN in its delta — the
/// injection point sits *after* local training, so the corruption is
/// only observable at the server side.
struct NanInjectingFedAvg;

impl FederatedAlgorithm for NanInjectingFedAvg {
    fn name(&self) -> String {
        "nan-injecting-fedavg".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        let mut upd = run_local_sgd(env, global, &spec, |_, _, _| {});
        if env.id == POISONED_CLIENT {
            upd.delta[0] = f32::NAN;
        }
        upd
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        let mut dir = vec![0.0f32; global.len()];
        uniform_average(&input.updates, &mut dir);
        server_step(global, &dir, input.cfg, input.mean_batches());
        RoundLog::default()
    }
}

fn build_sim<'a>(ds: &'a Dataset, test: &'a Dataset) -> Simulation<'a> {
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 6;
    // Full participation: the poisoned client is sampled in round 0, so
    // the failure (or containment) is pinned to the very first round.
    cfg.participation = 1.0;
    cfg.rounds = 4;
    cfg.eval_every = 2;
    let part = paper_partition(ds, cfg.clients, 0.5, cfg.seed);
    let views = part.views(ds);
    Simulation::new(
        cfg,
        ds,
        test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(1234);
            mlp(64, &[32], 10, &mut rng)
        }),
    )
}

fn make_data() -> (Dataset, Dataset) {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 50, 1.0);
    (spec.generate_train(&counts, 21), spec.generate_test(21))
}

/// Loud mode: the debug_invariants build must panic at the aggregation
/// site and the message must name the client and the round.
#[cfg(feature = "debug_invariants")]
#[test]
fn nan_delta_panics_at_aggregation_naming_client_and_round() {
    let (ds, test) = make_data();
    let sim = build_sim(&ds, &test);
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run(&mut NanInjectingFedAvg)
    }))
    .expect_err("debug_invariants build must panic on a poisoned delta");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic payload should be a string");
    assert!(msg.contains("non-finite"), "missing cause: {msg}");
    assert!(
        msg.contains(&format!("client {POISONED_CLIENT}")),
        "blame not pinned to the poisoned client: {msg}"
    );
    assert!(
        msg.contains("round 0"),
        "blame not pinned to round 0: {msg}"
    );
    assert!(
        msg.contains("server aggregation"),
        "failure not pinned to the aggregation site: {msg}"
    );
}

/// Release mode: without the feature, the same corruption is contained —
/// the poisoned update is dropped every round and the run finishes with
/// finite metrics.
#[cfg(not(feature = "debug_invariants"))]
#[test]
fn nan_delta_is_contained_without_the_feature() {
    let (ds, test) = make_data();
    let sim = build_sim(&ds, &test);
    let h = sim.run(&mut NanInjectingFedAvg);
    assert_eq!(h.records.len(), 4);
    for r in &h.records {
        assert_eq!(r.dropped_updates, 1, "round {}", r.round);
        assert!(
            r.train_loss.expect("healthy clients reported").is_finite(),
            "round {}",
            r.round
        );
    }
    let acc = h.final_accuracy(1);
    assert!(acc > 0.1, "model destroyed despite containment: {acc}");
}
