//! Figure 12: accuracy curves under the FedGrab (quantity-skewed)
//! partition at β = 0.1, IF = 0.1 — FedWCM-X vs the six baselines.

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::{print_series, run_history};
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let mut exp = ExpConfig::new(DatasetPreset::Cifar10, 0.1, 0.1, cli.scale, cli.seed);
    exp.fedgrab_partition = true;
    let methods = [
        Method::FedAvg,
        Method::BalanceFl,
        Method::FedGrab,
        Method::FedCm,
        Method::FedCmBalanceLoss,
        Method::FedCmBalanceSampler,
        Method::FedWcmX,
    ];
    let mut histories = Vec::new();
    for m in methods {
        histories.push(run_history(&exp, m, &cli));
        console.info(format!("[fig12] {} done", m.label()));
    }
    print_series("Fig.12 accuracy under the FedGrab partition", &histories);
    println!("\n# final accuracies:");
    for h in &histories {
        println!("{}: {:.4}", h.name, h.final_accuracy(3));
    }
    println!(
        "\nExpected shape (paper Fig. 12): FedWCM-X converges fast with a\n\
         final accuracy comparable to FedAvg/BalanceFL; FedCM variants fail."
    );
}
