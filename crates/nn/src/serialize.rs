//! Flat parameter (de)serialization — checkpointing for trained global
//! models without external dependencies — plus the little-endian byte
//! helpers ([`put_u32`], [`put_f32s`], [`ByteReader`], …) that the
//! server-state checkpoint format in `fedwcm-fl` builds on.
//!
//! Wire format: magic `b"FWCM"`, format version (u32 LE), parameter count
//! (u64 LE), then raw little-endian f32 parameters.

use crate::model::Model;

const MAGIC: &[u8; 4] = b"FWCM";
const VERSION: u32 = 1;

/// Append a little-endian u32.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian u64.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian f32 (bit pattern preserved exactly, NaN
/// payloads included).
pub fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian f64 (bit pattern preserved exactly).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a length-prefixed (u64 count) little-endian f32 slice.
pub fn put_f32s(out: &mut Vec<u8>, vs: &[f32]) {
    put_u64(out, vs.len() as u64);
    out.reserve(vs.len() * 4);
    for &v in vs {
        put_f32(out, v);
    }
}

/// Append a length-prefixed (u64 count) UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u64(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Append a length-prefixed (u64 count) opaque byte blob.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u64(out, b.len() as u64);
    out.extend_from_slice(b);
}

/// Sequential reader over a serialized byte buffer.
///
/// Every accessor returns `None` on exhaustion (or malformed UTF-8 for
/// [`ByteReader::str`]) instead of panicking, so deserializers can
/// surface truncation as a typed error.
#[derive(Clone, Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Reader starting at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// True once every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Option<u32> {
        let b = self.take(4)?;
        Some(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Option<u64> {
        let b = self.take(8)?;
        Some(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a little-endian f32 (any bit pattern, NaNs included).
    pub fn f32(&mut self) -> Option<f32> {
        let b = self.take(4)?;
        Some(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian f64.
    pub fn f64(&mut self) -> Option<f64> {
        let b = self.take(8)?;
        Some(f64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read a length-prefixed f32 slice written by [`put_f32s`].
    pub fn f32s(&mut self) -> Option<Vec<f32>> {
        let n = usize::try_from(self.u64()?).ok()?;
        // Guard against a corrupt length before allocating.
        if n.checked_mul(4)? > self.buf.len() - self.pos {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.f32()?);
        }
        Some(out)
    }

    /// Read a length-prefixed UTF-8 string written by [`put_str`].
    pub fn str(&mut self) -> Option<String> {
        let n = usize::try_from(self.u64()?).ok()?;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).ok()
    }

    /// Read a length-prefixed opaque byte blob written by [`put_bytes`].
    pub fn bytes(&mut self) -> Option<Vec<u8>> {
        let n = usize::try_from(self.u64()?).ok()?;
        Some(self.take(n)?.to_vec())
    }
}

/// Serialize a model's parameters to the checkpoint format.
pub fn save_params(model: &Model) -> Vec<u8> {
    let params = model.params();
    let mut out = Vec::with_capacity(16 + params.len() * 4);
    out.extend_from_slice(MAGIC);
    put_u32(&mut out, VERSION);
    put_u64(&mut out, params.len() as u64);
    for &p in params {
        put_f32(&mut out, p);
    }
    out
}

/// Errors from [`load_params`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// Missing/incorrect magic bytes or truncated header.
    BadHeader,
    /// Unsupported format version.
    BadVersion(u32),
    /// Parameter count does not match the model architecture.
    WrongArity {
        /// Parameters in the checkpoint.
        found: usize,
        /// Parameters the model expects.
        expected: usize,
    },
    /// Body shorter/longer than the declared count.
    Truncated,
    /// Non-finite parameter encountered.
    NonFinite,
}

/// Load a checkpoint produced by [`save_params`] into a model with a
/// matching architecture.
pub fn load_params(model: &mut Model, bytes: &[u8]) -> Result<(), LoadError> {
    if bytes.len() < 16 || &bytes[..4] != MAGIC {
        return Err(LoadError::BadHeader);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(LoadError::BadVersion(version));
    }
    let count = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]) as usize;
    if count != model.param_len() {
        return Err(LoadError::WrongArity {
            found: count,
            expected: model.param_len(),
        });
    }
    let body = &bytes[16..];
    if body.len() != count * 4 {
        return Err(LoadError::Truncated);
    }
    let mut params = Vec::with_capacity(count);
    for chunk in body.chunks_exact(4) {
        let v = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        if !v.is_finite() {
            return Err(LoadError::NonFinite);
        }
        params.push(v);
    }
    model.set_params(&params);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;
    use fedwcm_stats::Xoshiro256pp;

    fn model(seed: u64) -> Model {
        let mut rng = Xoshiro256pp::seed_from(seed);
        mlp(8, &[6], 3, &mut rng)
    }

    #[test]
    fn roundtrip_restores_exact_params() {
        let m1 = model(1);
        let bytes = save_params(&m1);
        let mut m2 = model(2);
        assert_ne!(m1.params(), m2.params());
        load_params(&mut m2, &bytes).unwrap();
        assert_eq!(m1.params(), m2.params());
    }

    #[test]
    fn header_validation() {
        let mut m = model(3);
        assert_eq!(load_params(&mut m, b"xxxx"), Err(LoadError::BadHeader));
        let mut bad = save_params(&m);
        bad[0] = b'X';
        assert_eq!(load_params(&mut m, &bad), Err(LoadError::BadHeader));
        let mut badver = save_params(&m);
        badver[4] = 99;
        assert_eq!(load_params(&mut m, &badver), Err(LoadError::BadVersion(99)));
    }

    #[test]
    fn arity_and_truncation_checks() {
        let big = model(4);
        let mut small_rng = Xoshiro256pp::seed_from(5);
        let mut small = mlp(4, &[3], 2, &mut small_rng);
        let bytes = save_params(&big);
        assert!(matches!(
            load_params(&mut small, &bytes),
            Err(LoadError::WrongArity { .. })
        ));
        let mut m = model(6);
        let mut truncated = save_params(&m);
        truncated.pop();
        assert_eq!(load_params(&mut m, &truncated), Err(LoadError::Truncated));
    }

    #[test]
    fn byte_helpers_roundtrip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 3);
        put_f32(&mut buf, f32::NAN);
        put_f64(&mut buf, -0.0);
        put_f32s(&mut buf, &[1.5, -2.5]);
        put_str(&mut buf, "Δ-résilience");
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u32(), Some(7));
        assert_eq!(r.u64(), Some(u64::MAX - 3));
        assert_eq!(r.f32().map(f32::to_bits), Some(f32::NAN.to_bits()));
        assert_eq!(r.f64().map(f64::to_bits), Some((-0.0f64).to_bits()));
        assert_eq!(r.f32s(), Some(vec![1.5, -2.5]));
        assert_eq!(r.str().as_deref(), Some("Δ-résilience"));
        assert!(r.is_exhausted());
        assert_eq!(r.u32(), None, "reads past the end return None");
        let mut blob = Vec::new();
        put_bytes(&mut blob, &[0xde, 0xad]);
        let mut r = ByteReader::new(&blob);
        assert_eq!(r.bytes(), Some(vec![0xde, 0xad]));
        assert!(r.is_exhausted());
    }

    #[test]
    fn byte_reader_rejects_corrupt_lengths() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX); // absurd element count
        put_f32(&mut buf, 1.0);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.f32s(), None);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.str(), None);
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.bytes(), None);
    }

    #[test]
    fn nonfinite_rejected() {
        let mut m = model(7);
        let mut bytes = save_params(&m);
        bytes[16..20].copy_from_slice(&f32::NAN.to_le_bytes());
        assert_eq!(load_params(&mut m, &bytes), Err(LoadError::NonFinite));
    }
}
