//! The workspace umbrella feature must actually reach the parallel
//! core: `--features race_check` on the root package arms
//! `fedwcm-parallel/race_check`, and a sanitized end-to-end job stays
//! value-identical to the unsanitized build (the sanitizer observes,
//! it never steers).

use fedwcm_parallel::{parallel_map, shadow};

#[test]
fn umbrella_feature_reaches_the_parallel_core() {
    // Armed exactly when the root feature is on — a broken forwarding
    // entry in the root Cargo.toml fails here, not silently in CI.
    assert_eq!(shadow::ENABLED, cfg!(feature = "race_check"));
}

#[test]
fn sanitized_pool_results_are_value_identical() {
    for threads in [1, 2, 4] {
        let out = parallel_map(257, threads, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        let gold: Vec<u64> = (0..257)
            .map(|i| (i as u64).wrapping_mul(0x9E37_79B9))
            .collect();
        assert_eq!(out, gold, "threads={threads}");
    }
}
