//! Table 3: client-sampling-rate sweep {5, 10, 20, 40, 80}% for
//! FedAvg / FedCM / FedWCM on CIFAR-10 (β = 0.6, IF = 0.1).

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::{print_table, run_cell};
use fedwcm_experiments::{parse_args, Cli, ExpConfig, Method, Scale};

fn main() {
    let cli: Cli = parse_args(std::env::args());
    let console = cli.console();
    let methods = [Method::FedAvg, Method::FedCm, Method::FedWcm];
    let headers: Vec<String> = methods.iter().map(|m| m.label().to_string()).collect();
    let rates = [0.05f64, 0.1, 0.2, 0.4, 0.8];
    let mut rows = Vec::new();
    for rate in rates {
        let mut exp = ExpConfig::new(DatasetPreset::Cifar10, 0.1, 0.6, cli.scale, cli.seed);
        // The 5%/10% rows need enough clients for the rate to resolve.
        if cli.scale != Scale::Paper {
            exp.clients = 20;
        }
        exp.participation = rate;
        let values: Vec<f64> = methods.iter().map(|&m| run_cell(&exp, m, &cli)).collect();
        console.info(format!("[table3] rate={rate} done"));
        rows.push((format!("{}%", (rate * 100.0) as usize), values));
    }
    print_table("Table 3 — client sampling rate sweep", &headers, &rows);
    println!(
        "\nExpected shape (paper Table 3): FedWCM highest at every rate and\n\
         notably robust at low participation; FedCM poor throughout."
    );
}
