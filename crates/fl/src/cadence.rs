//! Server aggregation cadences: when accumulated client updates are
//! applied to the global model.
//!
//! The engine's round loop is an event-driven core over *received
//! uploads*; the [`Cadence`] chosen in [`crate::FlConfig`] decides when
//! those uploads turn into aggregation events:
//!
//! * [`Cadence::Sync`] — the classic barrier: every round aggregates
//!   exactly the uploads that survived that round (subject to the quorum
//!   rule). This reproduces the historical round-synchronous engine bit
//!   for bit.
//! * [`Cadence::BufferedK`] — FedBuff-style buffered aggregation: healthy
//!   uploads accumulate in a first-class server buffer and the server
//!   flushes an aggregation as soon as `k` of them are available,
//!   carrying any remainder forward to later rounds. A carried upload is
//!   discounted at flush time by its staleness (rounds since the global
//!   model it trained against).
//! * [`Cadence::Async`] — fully asynchronous per-update application: each
//!   buffered upload is applied individually, weighted by
//!   `staleness_discount(s) / n̄` where `n̄` is the expected cohort size,
//!   so a full round of asynchronous applies moves the model on the same
//!   scale as one synchronous round. `max_in_flight` bounds how many
//!   buffered uploads the server applies per round; the excess stays
//!   buffered (and ages) — the bounded in-flight window of an async
//!   server with a finite apply budget.
//!
//! All three cadences are driven by the engine's logical round counter
//! and `fedwcm-trace`'s `LogicalClock` — never wall time — so every run
//! is bitwise deterministic across thread counts and replayable across
//! checkpoint/resume (`FWCK` v3 serializes the aggregation buffer as
//! first-class server state).

/// When the server applies accumulated client updates to the global
/// model. See the module docs for the semantics of each variant.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Cadence {
    /// Round-synchronous aggregation (the default): one barrier, one
    /// aggregation per round over that round's surviving uploads.
    #[default]
    Sync,
    /// FedBuff-style buffered aggregation: flush as soon as `k` healthy
    /// uploads have accumulated, carrying the remainder forward.
    BufferedK {
        /// Healthy uploads that must accumulate before a flush (≥ 1).
        k: usize,
    },
    /// Fully asynchronous, staleness-weighted per-update application.
    Async {
        /// Maximum buffered uploads applied per round (≥ 1); the excess
        /// stays buffered and ages.
        max_in_flight: usize,
    },
}

impl Cadence {
    /// Validate invariants; panics with context on misconfiguration.
    pub fn validate(&self) {
        match *self {
            Cadence::Sync => {}
            Cadence::BufferedK { k } => {
                assert!(k >= 1, "buffered cadence needs k ≥ 1, got {k}");
            }
            Cadence::Async { max_in_flight } => {
                assert!(
                    max_in_flight >= 1,
                    "async cadence needs max_in_flight ≥ 1, got {max_in_flight}"
                );
            }
        }
    }

    /// Short human/CLI label: `sync`, `buffered:K`, or `async:N`.
    pub fn label(&self) -> String {
        match *self {
            Cadence::Sync => "sync".to_string(),
            Cadence::BufferedK { k } => format!("buffered:{k}"),
            Cadence::Async { max_in_flight } => format!("async:{max_in_flight}"),
        }
    }

    /// Parse a [`Cadence::label`]-style spec: `sync`, `buffered:K`, or
    /// `async:N`. Returns `None` for anything else (including a zero
    /// parameter, which [`Cadence::validate`] would reject).
    pub fn parse(spec: &str) -> Option<Cadence> {
        if spec == "sync" {
            return Some(Cadence::Sync);
        }
        let (kind, param) = spec.split_once(':')?;
        let n: usize = param.parse().ok()?;
        if n == 0 {
            return None;
        }
        match kind {
            "buffered" => Some(Cadence::BufferedK { k: n }),
            "async" => Some(Cadence::Async { max_in_flight: n }),
            _ => None,
        }
    }

    /// Wire encoding for `FWCK` v3 checkpoints: a variant tag and the
    /// variant's parameter (0 for [`Cadence::Sync`]).
    pub(crate) fn tag_param(&self) -> (u32, u64) {
        match *self {
            Cadence::Sync => (0, 0),
            Cadence::BufferedK { k } => (1, k as u64),
            Cadence::Async { max_in_flight } => (2, max_in_flight as u64),
        }
    }

    /// Decode [`Cadence::tag_param`]; `None` on an unknown tag or an
    /// invalid parameter.
    pub(crate) fn from_tag_param(tag: u32, param: u64) -> Option<Cadence> {
        let n = usize::try_from(param).ok()?;
        match tag {
            0 => Some(Cadence::Sync),
            1 if n >= 1 => Some(Cadence::BufferedK { k: n }),
            2 if n >= 1 => Some(Cadence::Async { max_in_flight: n }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_roundtrip_through_parse() {
        for c in [
            Cadence::Sync,
            Cadence::BufferedK { k: 4 },
            Cadence::Async { max_in_flight: 7 },
        ] {
            assert_eq!(Cadence::parse(&c.label()), Some(c));
            c.validate();
        }
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "synch",
            "buffered",
            "buffered:",
            "buffered:0",
            "buffered:x",
            "async:0",
            "async:-1",
            "fedbuff:3",
        ] {
            assert_eq!(Cadence::parse(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn wire_encoding_roundtrips() {
        for c in [
            Cadence::Sync,
            Cadence::BufferedK { k: 1 },
            Cadence::Async { max_in_flight: 32 },
        ] {
            let (tag, param) = c.tag_param();
            assert_eq!(Cadence::from_tag_param(tag, param), Some(c));
        }
        assert_eq!(Cadence::from_tag_param(9, 0), None);
        assert_eq!(Cadence::from_tag_param(1, 0), None);
        assert_eq!(Cadence::from_tag_param(2, 0), None);
    }

    #[test]
    #[should_panic]
    fn zero_k_rejected() {
        Cadence::BufferedK { k: 0 }.validate();
    }

    #[test]
    #[should_panic]
    fn zero_window_rejected() {
        Cadence::Async { max_in_flight: 0 }.validate();
    }

    #[test]
    fn default_is_sync() {
        assert_eq!(Cadence::default(), Cadence::Sync);
    }
}
