//! Shared machinery for the neuron-concentration figures (4, 13–17):
//! run a method while recording per-round mean and per-layer
//! concentrations of the global model.

use crate::cli::Cli;
use crate::methods::{build_method, Method};
use crate::setup::ExpConfig;
use fedwcm_analysis::concentration::layer_concentrations;
use fedwcm_fl::History;

/// Samples used for each concentration evaluation.
const CONC_SAMPLES: usize = 300;

/// A trajectory with concentration tracking.
pub struct CollapseTrace {
    /// Method label.
    pub name: String,
    /// The training history (accuracy series etc.).
    pub history: History,
    /// `(round, mean concentration)` per round.
    pub mean_concentration: Vec<(usize, f64)>,
    /// `(round, per-layer concentrations)`; layer names in `layer_names`.
    pub per_layer: Vec<(usize, Vec<f64>)>,
    /// Layer names for `per_layer` columns.
    pub layer_names: Vec<String>,
}

/// Run `method` on `exp`, recording concentration every `every` rounds.
pub fn run_with_concentration(
    exp: &ExpConfig,
    method: Method,
    cli: &Cli,
    every: usize,
) -> CollapseTrace {
    let mut e = exp.clone();
    if let Some(r) = cli.rounds {
        e.rounds = r;
    }
    let task = e.prepare();
    let sim = task.simulation();
    let mut algo = build_method(method, &task);

    let mut probe = (task.factory)();
    let mut mean_concentration = Vec::new();
    let mut per_layer: Vec<(usize, Vec<f64>)> = Vec::new();
    let mut layer_names: Vec<String> = Vec::new();
    let test = &task.test;
    let history = sim.run_with_observer(algo.as_mut(), |round, global| {
        if round % every.max(1) != 0 {
            return;
        }
        probe.set_params(global);
        let report = layer_concentrations(&mut probe, test, CONC_SAMPLES);
        if layer_names.is_empty() {
            layer_names = report.per_layer.iter().map(|(n, _)| n.clone()).collect();
        }
        mean_concentration.push((round, report.mean));
        per_layer.push((round, report.per_layer.iter().map(|(_, c)| *c).collect()));
    });

    CollapseTrace {
        name: method.label().to_string(),
        history,
        mean_concentration,
        per_layer,
        layer_names,
    }
}

/// Print a `(round, value…)` CSV block with a title.
pub fn print_trace_csv(title: &str, columns: &[String], rows: &[(usize, Vec<f64>)]) {
    println!("\n## {title} (CSV: round,{})", columns.join(","));
    for (round, values) in rows {
        print!("{round}");
        for v in values {
            print!(",{v:.4}");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::Scale;
    use fedwcm_data::synth::DatasetPreset;

    #[test]
    fn concentration_trace_records_every_round() {
        let exp = ExpConfig::new(DatasetPreset::FashionMnist, 0.1, 0.3, Scale::Smoke, 71);
        let cli = Cli {
            scale: Scale::Smoke,
            rounds: Some(4),
            ..Cli::default()
        };
        let trace = run_with_concentration(&exp, Method::FedCm, &cli, 1);
        assert_eq!(trace.mean_concentration.len(), 4);
        assert_eq!(trace.per_layer.len(), 4);
        assert!(!trace.layer_names.is_empty());
        for &(_, c) in &trace.mean_concentration {
            assert!((0.0..=1.0).contains(&c));
        }
        for (_, layers) in &trace.per_layer {
            assert_eq!(layers.len(), trace.layer_names.len());
        }
    }

    #[test]
    fn sampling_interval_respected() {
        let exp = ExpConfig::new(DatasetPreset::FashionMnist, 0.5, 0.3, Scale::Smoke, 72);
        let cli = Cli {
            scale: Scale::Smoke,
            rounds: Some(6),
            ..Cli::default()
        };
        let trace = run_with_concentration(&exp, Method::FedAvg, &cli, 3);
        let rounds: Vec<usize> = trace.mean_concentration.iter().map(|&(r, _)| r).collect();
        assert_eq!(rounds, vec![0, 3]);
    }
}
