//! SCAFFOLD (Karimireddy et al., 2020): control variates that cancel
//! client drift.
//!
//! Each client keeps a control `c_i`, the server keeps `c`. Local steps
//! follow `g − c_i + c`; after training, the client refreshes its control
//! with "option II": `c_i⁺ = c_i − c + (x_r − x_B)/(η_l B)` — exactly the
//! engine's normalised delta. The server moves `c` by the participation-
//! weighted mean control change.

use fedwcm_fl::algorithm::{
    server_step, uniform_average, FederatedAlgorithm, RoundInput, RoundLog, StateError,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_nn::loss::CrossEntropy;
use fedwcm_nn::serialize::{put_f32s, put_u64, ByteReader};

/// SCAFFOLD with option-II control updates.
pub struct Scaffold {
    server_control: Vec<f32>,
    client_controls: Vec<Vec<f32>>,
    num_clients: usize,
}

impl Scaffold {
    /// New SCAFFOLD instance for `num_clients` clients. Buffers are
    /// allocated lazily at the first aggregation (parameter size unknown
    /// until then); empty buffers are treated as zeros.
    pub fn new(num_clients: usize) -> Self {
        Scaffold {
            server_control: Vec::new(),
            client_controls: vec![Vec::new(); num_clients],
            num_clients,
        }
    }

    /// Server control vector (empty = zeros, before first aggregation).
    pub fn server_control(&self) -> &[f32] {
        &self.server_control
    }
}

impl FederatedAlgorithm for Scaffold {
    fn name(&self) -> String {
        "SCAFFOLD".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        let ci = &self.client_controls[env.id];
        let c = &self.server_control;
        let mut update = run_local_sgd(env, global, &spec, |grad, _, _| {
            if !c.is_empty() {
                for ((g, cc), cic) in grad.iter_mut().zip(c).zip(ci) {
                    *g += cc - cic;
                }
            }
        });
        // Option II control refresh: c_i⁺ = c_i − c + delta.
        let mut new_control = update.delta.clone();
        if !c.is_empty() {
            for ((nc, cic), cc) in new_control.iter_mut().zip(ci).zip(c) {
                *nc += cic - cc;
            }
        }
        update.extra = Some(new_control);
        update
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        let dim = global.len();
        if self.server_control.is_empty() {
            self.server_control = vec![0.0f32; dim];
        }

        // Model update: plain averaged deltas (SCAFFOLD server step).
        let mut dir = vec![0.0f32; dim];
        uniform_average(&input.updates, &mut dir);
        server_step(global, &dir, input.cfg, input.mean_batches());

        // Control updates: c += |P|/N · mean_i(c_i⁺ − c_i).
        let sampled = input.updates.len() as f32;
        let scale = sampled / self.num_clients as f32 / sampled; // = 1/N
        for u in &input.updates {
            let new_control = u
                .extra
                .as_ref()
                // lint:allow(panic-freedom) protocol contract: SCAFFOLD's
                // own client_update always attaches the control payload;
                // its absence means mismatched algorithm wiring.
                .expect("SCAFFOLD update missing control payload");
            let old = &mut self.client_controls[u.client];
            if old.is_empty() {
                *old = vec![0.0f32; dim];
            }
            for ((c, nc), oc) in self
                .server_control
                .iter_mut()
                .zip(new_control)
                .zip(old.iter())
            {
                *c += scale * (nc - oc);
            }
            old.copy_from_slice(new_control);
        }
        RoundLog::default()
    }

    // Cross-round state: the server control and every client control.
    fn save_state(&self) -> Option<Vec<u8>> {
        let mut out = Vec::new();
        put_f32s(&mut out, &self.server_control);
        put_u64(&mut out, self.client_controls.len() as u64);
        for c in &self.client_controls {
            put_f32s(&mut out, c);
        }
        Some(out)
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let mut r = ByteReader::new(bytes);
        let server_control = r.f32s().ok_or(StateError::Malformed)?;
        let n = r.u64().ok_or(StateError::Malformed)? as usize;
        if n != self.num_clients {
            return Err(StateError::Malformed);
        }
        let mut client_controls = Vec::with_capacity(n);
        for _ in 0..n {
            client_controls.push(r.f32s().ok_or(StateError::Malformed)?);
        }
        if !r.is_exhausted() {
            return Err(StateError::Malformed);
        }
        self.server_control = server_control;
        self.client_controls = client_controls;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{build_sim, small_task};

    #[test]
    fn learns_heterogeneous_task() {
        let (train, test, cfg) = small_task(61, 1.0);
        let clients = cfg.clients;
        let sim = build_sim(&train, &test, cfg, 0.1);
        let h = sim.run(&mut Scaffold::new(clients));
        assert!(h.final_accuracy(1) > 0.45, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn controls_populated_after_run() {
        let (train, test, mut cfg) = small_task(62, 1.0);
        cfg.rounds = 3;
        cfg.participation = 1.0;
        let clients = cfg.clients;
        let sim = build_sim(&train, &test, cfg, 0.6);
        let mut algo = Scaffold::new(clients);
        let _ = sim.run(&mut algo);
        assert!(!algo.server_control().is_empty());
        let norm: f32 = algo
            .server_control()
            .iter()
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt();
        assert!(norm > 0.0);
        assert!(algo.client_controls.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn mean_client_control_tracks_server_control() {
        // With full participation, c should equal the mean of c_i.
        let (train, test, mut cfg) = small_task(63, 1.0);
        cfg.rounds = 4;
        cfg.participation = 1.0;
        let clients = cfg.clients;
        let sim = build_sim(&train, &test, cfg, 0.6);
        let mut algo = Scaffold::new(clients);
        let _ = sim.run(&mut algo);
        let dim = algo.server_control().len();
        let mut mean = vec![0.0f32; dim];
        for ci in &algo.client_controls {
            for (m, c) in mean.iter_mut().zip(ci) {
                *m += c / clients as f32;
            }
        }
        for (m, c) in mean.iter().zip(algo.server_control()) {
            assert!((m - c).abs() < 1e-4, "mean {m} vs server {c}");
        }
    }
}
