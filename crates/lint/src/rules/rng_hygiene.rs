//! `rng-stream-hygiene` — taint-tracking for named RNG streams.
//!
//! Every stochastic decision in the workspace draws from a stream
//! created by `Xoshiro256pp::stream(seed, &[LABEL, …])`, where the
//! first label element names the purpose (client training, server
//! sampling, the `0xFA17` fault stream, …). Reproducibility — and the
//! fault-isolation guarantee of PR 3 — depends on those streams never
//! cross-contaminating. This rule taint-tracks stream values through
//! the call graph (into parameters at call sites and out of functions
//! through returns) and flags:
//!
//! 1. **mixing** — one function draws from two RNG variables whose
//!    label sets are disjoint (i.e. provably different streams). A
//!    helper that draws from a single `&mut impl Rng` parameter is
//!    *not* mixing, no matter how many differently-labelled streams
//!    its callers pass in — per invocation it sees one stream;
//! 2. **boundary escape** — a labelled stream is passed as an argument
//!    to a function in *another* crate when that `(from, to)` pair is
//!    not on the allowlist. Handing streams across crate boundaries is
//!    how the FedJAX-style contamination bugs start; the allowlist
//!    names the audited hand-offs.
//!
//! Draw methods: the `Rng` trait surface (`next_u64`, `next_f64`,
//! `next_f32`, `next_below`, `uniform`, `bernoulli`, `shuffle`,
//! `sample_indices`). Test code is exempt.

use crate::ast::{Expr, Stmt};
use crate::callgraph::{CallGraph, FnId};
use crate::engine::{Diagnostic, FileCtx};
use std::collections::{BTreeMap, BTreeSet};

const RULE: &str = "rng-stream-hygiene";

/// Methods that advance an RNG stream.
const DRAW_METHODS: &[&str] = &[
    "next_u64",
    "next_f64",
    "next_f32",
    "next_below",
    "uniform",
    "bernoulli",
    "shuffle",
    "sample_indices",
];

/// Audited cross-crate stream hand-offs (`(from, to)` by crate dir
/// name). Any crate may pass a stream into `stats` (the RNG home —
/// its distributions all take `&mut impl Rng`); the pairs here are the
/// additional deliberate hand-offs. Everything else is a finding.
const CROSS_CRATE_ALLOW: &[(&str, &str)] = &[
    // Client training streams seed model init and samplers.
    ("fl", "nn"),
    ("fl", "data"),
    ("fl", "stats"),
    // Baselines drive the same samplers with their client streams.
    ("algos", "data"),
    ("algos", "nn"),
    ("algos", "stats"),
    // Long-tail methods re-use the engine's client-side helpers.
    ("longtail", "fl"),
    ("longtail", "nn"),
    ("longtail", "data"),
    // Dataset synthesis drives tensor-level random init.
    ("data", "tensor"),
    ("data", "stats"),
    ("nn", "stats"),
    ("nn", "tensor"),
    ("tensor", "stats"),
    ("he", "stats"),
    ("core", "stats"),
    ("algos", "stats"),
    ("faults", "stats"),
    ("analysis", "stats"),
];

type Labels = BTreeSet<String>;

/// Per-variable taint inside one function body.
#[derive(Default)]
struct FnState {
    /// Local / parameter name → labels that may flow into it.
    vars: BTreeMap<String, Labels>,
}

/// Run the rule over the parsed workspace.
pub fn check_rng_hygiene(files: &[FileCtx], cg: &CallGraph<'_>, diags: &mut Vec<Diagnostic>) {
    let n = cg.fns.len();
    // Taint flowing into each function's parameters from call sites,
    // and out of each function through its return value.
    let mut param_taint: Vec<Vec<Labels>> = cg
        .fns
        .iter()
        .map(|&(_, f)| vec![Labels::new(); f.params.len()])
        .collect();
    let mut ret_taint: Vec<Labels> = vec![Labels::new(); n];

    // Fixpoint: label sets only grow, so this terminates. The bound is
    // a backstop for pathological graphs.
    for _ in 0..12 {
        let mut changed = false;
        for id in 0..n {
            let state = local_state(cg, id, &param_taint[id], &ret_taint);
            // Propagate into callees' parameters.
            let (_, f) = cg.fns[id];
            f.body.walk(&mut |e| {
                let args = match e {
                    Expr::Call { args, .. } | Expr::MethodCall { args, .. } => args,
                    _ => return,
                };
                let Some(target) = cg.resolve(id, e) else {
                    return;
                };
                for (k, a) in args.iter().enumerate() {
                    let labels = arg_labels(a, &state);
                    if labels.is_empty() {
                        continue;
                    }
                    if let Some(slot) = param_taint[target].get_mut(param_slot(cg, target, k)) {
                        for l in labels {
                            changed |= slot.insert(l);
                        }
                    }
                }
            });
            // Propagate through the return value.
            let ret = returned_labels(cg.fns[id].1, &state);
            for l in ret {
                changed |= ret_taint[id].insert(l);
            }
        }
        if !changed {
            break;
        }
    }

    // Report per function.
    for (id, &(fi, f)) in cg.fns.iter().enumerate() {
        let ctx = &files[fi];
        if !ctx.is_lib_crate() || ctx.is_test_line(f.line) {
            continue;
        }
        let state = local_state(cg, id, &param_taint[id], &ret_taint);
        report_mixing(ctx, f, &state, diags);
        report_boundaries(files, cg, id, &state, diags);
    }
}

/// Map caller argument position to callee parameter slot: methods
/// called as `recv.m(a, b)` have `self` at slot 0, so arguments shift
/// by one.
fn param_slot(cg: &CallGraph<'_>, target: FnId, arg_idx: usize) -> usize {
    let f = cg.fns[target].1;
    if f.params.first().is_some_and(|p| p.name == "self") {
        arg_idx + 1
    } else {
        arg_idx
    }
}

/// Labels carried by an argument expression: a tainted variable
/// (possibly behind `&mut`) or an inline `Xoshiro256pp::stream` call.
fn arg_labels(a: &Expr, state: &FnState) -> Labels {
    if let Some(l) = stream_ctor_label(a) {
        return std::iter::once(l).collect();
    }
    match a {
        Expr::Unary { expr, .. } => arg_labels(expr, state),
        Expr::Path { segs, .. } if segs.len() == 1 => {
            state.vars.get(&segs[0]).cloned().unwrap_or_default()
        }
        _ => Labels::new(),
    }
}

/// `Xoshiro256pp::stream(seed, &[LABEL, …])` → the rendered label.
/// Returns `Some("?")` when the label expression is too complex to
/// render — still a stream, label unknown.
fn stream_ctor_label(e: &Expr) -> Option<String> {
    let Expr::Call { callee, args, .. } = e else {
        return None;
    };
    let Expr::Path { segs, .. } = &**callee else {
        return None;
    };
    if segs.last().map(String::as_str) != Some("stream")
        || segs.len() < 2
        || segs[segs.len() - 2] != "Xoshiro256pp"
    {
        return None;
    }
    let first = args.get(1).and_then(|a| {
        let arr = match a {
            Expr::Unary { expr, .. } => &**expr,
            other => other,
        };
        if let Expr::Array { items, .. } = arr {
            items.first()
        } else {
            None
        }
    });
    Some(match first {
        Some(Expr::Lit { text, .. }) => text.clone(),
        Some(Expr::Path { segs, .. }) => segs.last().cloned().unwrap_or_else(|| "?".to_string()),
        _ => "?".to_string(),
    })
}

/// Build the variable-taint state of one function: parameter taint
/// from call sites plus `let` bindings of stream constructors, moved
/// stream variables, and calls returning streams.
fn local_state(cg: &CallGraph<'_>, id: FnId, params: &[Labels], ret_taint: &[Labels]) -> FnState {
    let (_, f) = cg.fns[id];
    let mut state = FnState::default();
    for (p, taint) in f.params.iter().zip(params) {
        if !taint.is_empty() {
            state.vars.insert(p.name.clone(), taint.clone());
        }
    }
    // Two passes so `let b = a;` after `let a = stream(…)` resolves
    // regardless of interleaving with other bindings.
    for _ in 0..2 {
        collect_bindings(cg, id, &f.body, ret_taint, &mut state);
    }
    state
}

fn collect_bindings(
    cg: &CallGraph<'_>,
    id: FnId,
    body: &crate::ast::Block,
    ret_taint: &[Labels],
    state: &mut FnState,
) {
    let visit = |name: &str, init: &Expr, state: &mut FnState| {
        let labels = binding_labels(cg, id, init, ret_taint, state);
        if !labels.is_empty() {
            state
                .vars
                .entry(name.to_string())
                .or_default()
                .extend(labels);
        }
    };
    let mut walk_block = Vec::new();
    walk_block.push(body);
    while let Some(b) = walk_block.pop() {
        for s in &b.stmts {
            if let Stmt::Let {
                name,
                init: Some(init),
                ..
            } = s
            {
                visit(name, init, state);
            }
        }
        b.walk(&mut |e| {
            if let Expr::BlockExpr(inner) = e {
                for s in &inner.stmts {
                    if let Stmt::Let {
                        name,
                        init: Some(init),
                        ..
                    } = s
                    {
                        visit(name, init, state);
                    }
                }
            }
        });
    }
}

/// Labels of a `let` initializer: stream constructor, moved tainted
/// variable, or a resolved call whose return is tainted.
fn binding_labels(
    cg: &CallGraph<'_>,
    id: FnId,
    init: &Expr,
    ret_taint: &[Labels],
    state: &FnState,
) -> Labels {
    if let Some(l) = stream_ctor_label(init) {
        return std::iter::once(l).collect();
    }
    match init {
        Expr::Path { segs, .. } if segs.len() == 1 => {
            state.vars.get(&segs[0]).cloned().unwrap_or_default()
        }
        Expr::Call { .. } | Expr::MethodCall { .. } => cg
            .resolve(id, init)
            .map(|t| ret_taint[t].clone())
            .unwrap_or_default(),
        _ => Labels::new(),
    }
}

/// Labels a function returns: its tail expression or any `return`
/// value that is a stream constructor or tainted variable.
fn returned_labels(f: &crate::ast::FnDef, state: &FnState) -> Labels {
    let mut out = Labels::new();
    let mut consider = |e: &Expr| {
        if let Some(l) = stream_ctor_label(e) {
            out.insert(l);
        } else if let Expr::Path { segs, .. } = e {
            if segs.len() == 1 {
                if let Some(ls) = state.vars.get(&segs[0]) {
                    out.extend(ls.iter().cloned());
                }
            }
        }
    };
    if let Some(Stmt::Expr(tail)) = f.body.stmts.last() {
        consider(tail);
    }
    f.body.walk(&mut |e| {
        if let Expr::Jump { value: Some(v), .. } = e {
            consider(v);
        }
    });
    out
}

/// Flag draws from two provably different streams in one function.
fn report_mixing(
    ctx: &FileCtx,
    f: &crate::ast::FnDef,
    state: &FnState,
    diags: &mut Vec<Diagnostic>,
) {
    // Drawn-from variables in draw order: (name, line).
    let mut draws: Vec<(String, usize)> = Vec::new();
    f.body.walk(&mut |e| {
        if let Expr::MethodCall {
            recv, method, line, ..
        } = e
        {
            if DRAW_METHODS.contains(&method.as_str()) {
                if let Some(base) = recv.base_ident() {
                    if state.vars.contains_key(base) {
                        draws.push((base.to_string(), *line));
                    }
                }
            }
        }
    });
    for (i, (a, _)) in draws.iter().enumerate() {
        for (b, line_b) in draws.iter().skip(i + 1) {
            if a == b {
                continue;
            }
            let (la, lb) = (&state.vars[a], &state.vars[b]);
            let known = |s: &Labels| !s.is_empty() && !s.contains("?");
            if known(la) && known(lb) && la.is_disjoint(lb) {
                diags.push(ctx.diag(
                    RULE,
                    *line_b,
                    format!(
                        "`{}` draws from RNG streams `{}` (via `{a}`) and `{}` (via `{b}`) — \
                         one function must consume one stream; split the stream-specific work \
                         into separate functions",
                        f.name,
                        la.iter().cloned().collect::<Vec<_>>().join("/"),
                        lb.iter().cloned().collect::<Vec<_>>().join("/"),
                    ),
                ));
                return; // one finding per function is enough
            }
        }
    }
}

/// Flag labelled streams passed to a function in another, non-allowlisted crate.
fn report_boundaries(
    files: &[FileCtx],
    cg: &CallGraph<'_>,
    id: FnId,
    state: &FnState,
    diags: &mut Vec<Diagnostic>,
) {
    let (fi, f) = cg.fns[id];
    let ctx = &files[fi];
    let Some(from) = ctx.crate_name.clone() else {
        return;
    };
    f.body.walk(&mut |e| {
        let (args, line) = match e {
            Expr::Call { args, line, .. } | Expr::MethodCall { args, line, .. } => (args, line),
            _ => return,
        };
        let Some(target) = cg.resolve(id, e) else {
            return;
        };
        let Some(to) = cg.crate_of(target, files) else {
            return;
        };
        if to == from || to == "stats" {
            return;
        }
        if CROSS_CRATE_ALLOW.contains(&(from.as_str(), to.as_str())) {
            return;
        }
        for a in args {
            let labels = arg_labels(a, state);
            if labels.is_empty() {
                continue;
            }
            let callee = &cg.fns[target].1.name;
            diags.push(ctx.diag(
                RULE,
                *line,
                format!(
                    "RNG stream `{}` crosses the crate boundary `{from}` → `{to}` \
                     (passed to `{callee}`) — this hand-off is not on the audited allowlist; \
                     derive a sub-stream at the boundary or extend CROSS_CRATE_ALLOW with a \
                     review",
                    labels.iter().cloned().collect::<Vec<_>>().join("/"),
                ),
            ));
            return;
        }
    });
}
