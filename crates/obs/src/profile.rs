//! Phase attribution, per-round critical paths, and the profile
//! document.
//!
//! A [`Profile`] condenses a reconstructed [`SpanForest`] into the
//! numbers a budget can gate: per-phase totals with exact nearest-rank
//! percentiles, a four-way attribution of every tick (compute, fault
//! injection, wire, orchestration overhead), and a per-round breakdown
//! that labels each round compute-, straggler-, or wire-bound and
//! names its critical path. All tick accounting uses *self time* —
//! a span's duration minus its direct children's — so nested spans
//! never double-count, and the totals partition exactly.
//!
//! Profiles serialize to the `fedwcm-prof/v1` JSON schema: fixed key
//! order, phases sorted by name, rounds sorted by round number, and no
//! timestamps — two runs of the same experiment produce byte-identical
//! documents regardless of thread count or wall time.

use std::collections::BTreeMap;

use crate::error::ObsError;
use crate::json::Json;
use crate::tree::{SpanForest, SpanNode};

/// Schema tag emitted by [`Profile::to_json`].
pub const PROFILE_SCHEMA: &str = "fedwcm-prof/v1";

// Span and point names the attributor keys on. These mirror
// `fedwcm_trace::names`; the round-trip and determinism tests pin the
// two crates together without a runtime dependency.
const ROUND: &str = "round";
const FAULT_INJECT: &str = "fault_inject";
const SEND_FRAME: &str = "send_frame";
const FAULT_POINT: &str = "fault";
const RETRY_POINT: &str = "retry";

/// Aggregate statistics for one span name across the whole trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of durations.
    pub total_ticks: u64,
    /// Sum of self times (duration minus direct children).
    pub self_ticks: u64,
    /// Sum of direct-child durations.
    pub child_ticks: u64,
    /// Shortest single span.
    pub min_ticks: u64,
    /// Longest single span.
    pub max_ticks: u64,
    /// Median duration (nearest rank).
    pub p50_ticks: u64,
    /// 95th-percentile duration (nearest rank).
    pub p95_ticks: u64,
    /// 99th-percentile duration (nearest rank).
    pub p99_ticks: u64,
}

/// Occurrence count for one point name across the whole trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PointStat {
    /// Point name.
    pub name: String,
    /// Number of occurrences (span-attached and orphan).
    pub count: u64,
}

/// Where the trace's ticks went, partitioned by span self-time:
/// `fault_inject` spans are fault time, `send_frame` spans are wire
/// time, `round` self-time is orchestration overhead, and everything
/// else is compute.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Self-ticks of compute spans (training, aggregation, evaluation).
    pub compute_ticks: u64,
    /// Self-ticks of `fault_inject` spans.
    pub fault_ticks: u64,
    /// Self-ticks of `send_frame` spans.
    pub wire_ticks: u64,
    /// Self-ticks of `round` spans (orchestration between phases).
    pub overhead_ticks: u64,
}

impl Attribution {
    fn add(&mut self, name: &str, self_ticks: u64) {
        match name {
            FAULT_INJECT => self.fault_ticks += self_ticks,
            SEND_FRAME => self.wire_ticks += self_ticks,
            ROUND => self.overhead_ticks += self_ticks,
            _ => self.compute_ticks += self_ticks,
        }
    }
}

/// What dominated a round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoundLabel {
    /// Training and aggregation dominated.
    ComputeBound,
    /// Fault injection (dropouts, stragglers, corruption) dominated.
    StragglerBound,
    /// Transport (framing, retries) dominated.
    WireBound,
}

impl RoundLabel {
    /// The schema string for this label.
    pub fn as_str(self) -> &'static str {
        match self {
            RoundLabel::ComputeBound => "compute-bound",
            RoundLabel::StragglerBound => "straggler-bound",
            RoundLabel::WireBound => "wire-bound",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "compute-bound" => Some(RoundLabel::ComputeBound),
            "straggler-bound" => Some(RoundLabel::StragglerBound),
            "wire-bound" => Some(RoundLabel::WireBound),
            _ => None,
        }
    }
}

/// One federated round's tick breakdown and critical path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundProfile {
    /// Round number (from the `round` span's `round` field; rounds
    /// without the field are numbered by order of appearance).
    pub round: u64,
    /// Total ticks of the round span.
    pub ticks: u64,
    /// Compute self-ticks inside the round.
    pub compute_ticks: u64,
    /// Fault-injection self-ticks inside the round.
    pub fault_ticks: u64,
    /// Wire self-ticks inside the round.
    pub wire_ticks: u64,
    /// The round span's own self-ticks.
    pub overhead_ticks: u64,
    /// `fault` points fired inside the round.
    pub fault_points: u64,
    /// `retry` points fired inside the round.
    pub retry_points: u64,
    /// What dominated: wire-bound when wire ticks beat compute and at
    /// least match fault ticks; straggler-bound when fault ticks beat
    /// both; compute-bound otherwise.
    pub label: RoundLabel,
    /// Span names from the round to its deepest dominant descendant,
    /// joined with `;` (ties break toward the earlier start).
    pub critical_path: String,
}

/// The complete analysis of one trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Profile {
    /// Records in the source trace.
    pub records: u64,
    /// Spans reconstructed.
    pub spans: u64,
    /// Points recorded (span-attached plus orphan).
    pub points: u64,
    /// Sum of top-level span durations.
    pub total_ticks: u64,
    /// Four-way tick attribution over the whole trace.
    pub attribution: Attribution,
    /// Per-span-name statistics, sorted by name.
    pub phases: Vec<PhaseStat>,
    /// Per-point-name counts, sorted by name.
    pub point_totals: Vec<PointStat>,
    /// Per-round breakdowns, sorted by round number.
    pub rounds: Vec<RoundProfile>,
}

/// Exact nearest-rank percentile of a sorted sample: the smallest
/// element whose rank is at least `q * n`. `sorted` must be non-empty.
fn nearest_rank(sorted: &[u64], q_num: u64, q_den: u64) -> u64 {
    let n = sorted.len() as u64;
    // rank = ceil(n * q_num / q_den), clamped to [1, n].
    let rank = (n * q_num).div_ceil(q_den).clamp(1, n);
    sorted[(rank - 1) as usize]
}

struct PhaseAcc {
    durations: Vec<u64>,
    self_ticks: u64,
}

/// Analyze a reconstructed forest into a [`Profile`].
pub fn analyze(forest: &SpanForest) -> Profile {
    let mut phases: BTreeMap<String, PhaseAcc> = BTreeMap::new();
    let mut points: BTreeMap<String, u64> = BTreeMap::new();
    let mut attribution = Attribution::default();
    let mut spans = 0u64;
    let mut point_count = 0u64;
    forest.visit(&mut |_, node| {
        spans += 1;
        let self_ticks = node.self_ticks();
        attribution.add(&node.name, self_ticks);
        let acc = phases.entry(node.name.clone()).or_insert(PhaseAcc {
            durations: Vec::new(),
            self_ticks: 0,
        });
        acc.durations.push(node.duration());
        acc.self_ticks += self_ticks;
        for p in &node.points {
            point_count += 1;
            *points.entry(p.name.clone()).or_insert(0) += 1;
        }
    });
    for p in &forest.orphan_points {
        point_count += 1;
        *points.entry(p.name.clone()).or_insert(0) += 1;
    }
    let phases = phases
        .into_iter()
        .map(|(name, mut acc)| {
            acc.durations.sort_unstable();
            let total: u64 = acc.durations.iter().sum();
            PhaseStat {
                name,
                count: acc.durations.len() as u64,
                total_ticks: total,
                self_ticks: acc.self_ticks,
                child_ticks: total - acc.self_ticks,
                min_ticks: acc.durations[0],
                max_ticks: acc.durations[acc.durations.len() - 1],
                p50_ticks: nearest_rank(&acc.durations, 50, 100),
                p95_ticks: nearest_rank(&acc.durations, 95, 100),
                p99_ticks: nearest_rank(&acc.durations, 99, 100),
            }
        })
        .collect();
    let point_totals = points
        .into_iter()
        .map(|(name, count)| PointStat { name, count })
        .collect();
    let mut rounds = rounds_of(forest);
    rounds.sort_by_key(|r| r.round);
    Profile {
        records: forest.records as u64,
        spans,
        points: point_count,
        total_ticks: forest.roots.iter().map(SpanNode::duration).sum(),
        attribution,
        phases,
        point_totals,
        rounds,
    }
}

fn rounds_of(forest: &SpanForest) -> Vec<RoundProfile> {
    let mut rounds = Vec::new();
    let mut fallback_number = 0u64;
    forest.visit(&mut |_, node| {
        if node.name != ROUND {
            return;
        }
        let round = match node.field("round").and_then(|v| v.as_u64()) {
            Some(r) => r,
            None => fallback_number,
        };
        fallback_number += 1;
        rounds.push(round_profile(node, round));
    });
    rounds
}

fn round_profile(node: &SpanNode, round: u64) -> RoundProfile {
    let mut attribution = Attribution::default();
    let mut fault_points = 0u64;
    let mut retry_points = 0u64;
    let mut stack = vec![node];
    while let Some(n) = stack.pop() {
        attribution.add(&n.name, n.self_ticks());
        for p in &n.points {
            match p.name.as_str() {
                FAULT_POINT => fault_points += 1,
                RETRY_POINT => retry_points += 1,
                _ => {}
            }
        }
        stack.extend(n.children.iter());
    }
    let Attribution {
        compute_ticks,
        fault_ticks,
        wire_ticks,
        overhead_ticks,
    } = attribution;
    let label = if wire_ticks > compute_ticks && wire_ticks >= fault_ticks {
        RoundLabel::WireBound
    } else if fault_ticks > compute_ticks && fault_ticks > wire_ticks {
        RoundLabel::StragglerBound
    } else {
        RoundLabel::ComputeBound
    };
    RoundProfile {
        round,
        ticks: node.duration(),
        compute_ticks,
        fault_ticks,
        wire_ticks,
        overhead_ticks,
        fault_points,
        retry_points,
        label,
        critical_path: critical_path(node),
    }
}

/// The chain of dominant descendants: starting at `node`, repeatedly
/// descend into the longest child (ties break toward the earliest
/// start) and join the names with `;`.
pub fn critical_path(node: &SpanNode) -> String {
    let mut path = node.name.clone();
    let mut cur = node;
    while let Some(next) = cur
        .children
        .iter()
        // max_by_key takes the last maximum; compare (duration, Reverse
        // of position via start tick) so earlier starts win ties.
        .max_by(|a, b| {
            a.duration()
                .cmp(&b.duration())
                .then(b.start_t.cmp(&a.start_t))
        })
    {
        path.push(';');
        path.push_str(&next.name);
        cur = next;
    }
    path
}

impl Profile {
    /// Serialize to the `fedwcm-prof/v1` document.
    pub fn to_json(&self) -> Json {
        let phases = self
            .phases
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(p.name.clone())),
                    ("count".into(), Json::U64(p.count)),
                    ("total_ticks".into(), Json::U64(p.total_ticks)),
                    ("self_ticks".into(), Json::U64(p.self_ticks)),
                    ("child_ticks".into(), Json::U64(p.child_ticks)),
                    ("min_ticks".into(), Json::U64(p.min_ticks)),
                    ("max_ticks".into(), Json::U64(p.max_ticks)),
                    ("p50_ticks".into(), Json::U64(p.p50_ticks)),
                    ("p95_ticks".into(), Json::U64(p.p95_ticks)),
                    ("p99_ticks".into(), Json::U64(p.p99_ticks)),
                ])
            })
            .collect();
        let points = self
            .point_totals
            .iter()
            .map(|p| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(p.name.clone())),
                    ("count".into(), Json::U64(p.count)),
                ])
            })
            .collect();
        let rounds = self
            .rounds
            .iter()
            .map(|r| {
                Json::Obj(vec![
                    ("round".into(), Json::U64(r.round)),
                    ("ticks".into(), Json::U64(r.ticks)),
                    ("compute_ticks".into(), Json::U64(r.compute_ticks)),
                    ("fault_ticks".into(), Json::U64(r.fault_ticks)),
                    ("wire_ticks".into(), Json::U64(r.wire_ticks)),
                    ("overhead_ticks".into(), Json::U64(r.overhead_ticks)),
                    ("fault_points".into(), Json::U64(r.fault_points)),
                    ("retry_points".into(), Json::U64(r.retry_points)),
                    ("label".into(), Json::Str(r.label.as_str().into())),
                    ("critical_path".into(), Json::Str(r.critical_path.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".into(), Json::Str(PROFILE_SCHEMA.into())),
            ("records".into(), Json::U64(self.records)),
            ("spans".into(), Json::U64(self.spans)),
            ("points".into(), Json::U64(self.points)),
            ("total_ticks".into(), Json::U64(self.total_ticks)),
            (
                "attribution".into(),
                Json::Obj(vec![
                    (
                        "compute_ticks".into(),
                        Json::U64(self.attribution.compute_ticks),
                    ),
                    (
                        "fault_ticks".into(),
                        Json::U64(self.attribution.fault_ticks),
                    ),
                    ("wire_ticks".into(), Json::U64(self.attribution.wire_ticks)),
                    (
                        "overhead_ticks".into(),
                        Json::U64(self.attribution.overhead_ticks),
                    ),
                ]),
            ),
            ("phases".into(), Json::Arr(phases)),
            ("points_by_name".into(), Json::Arr(points)),
            ("rounds".into(), Json::Arr(rounds)),
        ])
    }

    /// Parse a `fedwcm-prof/v1` document back into a [`Profile`].
    pub fn from_json(doc: &Json) -> Result<Profile, ObsError> {
        let schema = require_str(doc, "schema")?;
        if schema != PROFILE_SCHEMA {
            return Err(ObsError::schema(format!(
                "expected schema {PROFILE_SCHEMA:?}, got {schema:?}"
            )));
        }
        let attribution_doc = doc
            .get("attribution")
            .ok_or_else(|| ObsError::schema("missing \"attribution\""))?;
        let attribution = Attribution {
            compute_ticks: require_u64(attribution_doc, "compute_ticks")?,
            fault_ticks: require_u64(attribution_doc, "fault_ticks")?,
            wire_ticks: require_u64(attribution_doc, "wire_ticks")?,
            overhead_ticks: require_u64(attribution_doc, "overhead_ticks")?,
        };
        let phases = require_arr(doc, "phases")?
            .iter()
            .map(|p| {
                Ok(PhaseStat {
                    name: require_str(p, "name")?.to_string(),
                    count: require_u64(p, "count")?,
                    total_ticks: require_u64(p, "total_ticks")?,
                    self_ticks: require_u64(p, "self_ticks")?,
                    child_ticks: require_u64(p, "child_ticks")?,
                    min_ticks: require_u64(p, "min_ticks")?,
                    max_ticks: require_u64(p, "max_ticks")?,
                    p50_ticks: require_u64(p, "p50_ticks")?,
                    p95_ticks: require_u64(p, "p95_ticks")?,
                    p99_ticks: require_u64(p, "p99_ticks")?,
                })
            })
            .collect::<Result<Vec<_>, ObsError>>()?;
        let point_totals = require_arr(doc, "points_by_name")?
            .iter()
            .map(|p| {
                Ok(PointStat {
                    name: require_str(p, "name")?.to_string(),
                    count: require_u64(p, "count")?,
                })
            })
            .collect::<Result<Vec<_>, ObsError>>()?;
        let rounds = require_arr(doc, "rounds")?
            .iter()
            .map(|r| {
                let tag = require_str(r, "label")?;
                let label = RoundLabel::from_tag(tag)
                    .ok_or_else(|| ObsError::schema(format!("unknown round label {tag:?}")))?;
                Ok(RoundProfile {
                    round: require_u64(r, "round")?,
                    ticks: require_u64(r, "ticks")?,
                    compute_ticks: require_u64(r, "compute_ticks")?,
                    fault_ticks: require_u64(r, "fault_ticks")?,
                    wire_ticks: require_u64(r, "wire_ticks")?,
                    overhead_ticks: require_u64(r, "overhead_ticks")?,
                    fault_points: require_u64(r, "fault_points")?,
                    retry_points: require_u64(r, "retry_points")?,
                    label,
                    critical_path: require_str(r, "critical_path")?.to_string(),
                })
            })
            .collect::<Result<Vec<_>, ObsError>>()?;
        Ok(Profile {
            records: require_u64(doc, "records")?,
            spans: require_u64(doc, "spans")?,
            points: require_u64(doc, "points")?,
            total_ticks: require_u64(doc, "total_ticks")?,
            attribution,
            phases,
            point_totals,
            rounds,
        })
    }

    /// The phase entry for `name`, if the trace contained such spans.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }
}

pub(crate) fn require_u64(doc: &Json, key: &str) -> Result<u64, ObsError> {
    doc.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ObsError::schema(format!("missing or non-integer {key:?}")))
}

pub(crate) fn require_str<'a>(doc: &'a Json, key: &str) -> Result<&'a str, ObsError> {
    doc.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ObsError::schema(format!("missing or non-string {key:?}")))
}

pub(crate) fn require_arr<'a>(doc: &'a Json, key: &str) -> Result<&'a [Json], ObsError> {
    match doc.get(key) {
        Some(Json::Arr(items)) => Ok(items),
        _ => Err(ObsError::schema(format!("missing or non-array {key:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::parse_trace;
    use crate::tree::build_forest;

    fn profile_of(lines: &[&str]) -> Profile {
        let text: String = lines.iter().map(|l| format!("{l}\n")).collect();
        analyze(&build_forest(&parse_trace(&text).expect("parses")).expect("well-formed"))
    }

    fn compute_round() -> Vec<&'static str> {
        vec![
            "{\"t\":1,\"ev\":\"start\",\"name\":\"round\",\"round\":0}",
            "{\"t\":2,\"ev\":\"start\",\"name\":\"client_update\"}",
            "{\"t\":3,\"ev\":\"start\",\"name\":\"local_epoch\"}",
            "{\"t\":9,\"ev\":\"end\",\"name\":\"local_epoch\"}",
            "{\"t\":10,\"ev\":\"end\",\"name\":\"client_update\"}",
            "{\"t\":11,\"ev\":\"start\",\"name\":\"fault_inject\"}",
            "{\"t\":12,\"ev\":\"point\",\"name\":\"fault\",\"kind\":\"dropout\"}",
            "{\"t\":13,\"ev\":\"end\",\"name\":\"fault_inject\"}",
            "{\"t\":14,\"ev\":\"start\",\"name\":\"send_frame\"}",
            "{\"t\":15,\"ev\":\"point\",\"name\":\"retry\"}",
            "{\"t\":16,\"ev\":\"end\",\"name\":\"send_frame\"}",
            "{\"t\":18,\"ev\":\"end\",\"name\":\"round\"}",
        ]
    }

    #[test]
    fn attribution_partitions_every_tick() {
        let p = profile_of(&compute_round());
        let a = p.attribution;
        // round: 17 total; client_update self = 8-6=2? client_update
        // spans t2..t10 (8 ticks), local_epoch t3..t9 (6 ticks), so
        // client_update self 2, local_epoch self 6, fault_inject 2,
        // send_frame 2, round self 17-8-2-2 = 5.
        assert_eq!(a.compute_ticks, 8);
        assert_eq!(a.fault_ticks, 2);
        assert_eq!(a.wire_ticks, 2);
        assert_eq!(a.overhead_ticks, 5);
        assert_eq!(
            a.compute_ticks + a.fault_ticks + a.wire_ticks + a.overhead_ticks,
            p.total_ticks
        );
    }

    #[test]
    fn rounds_get_labels_paths_and_point_counts() {
        let p = profile_of(&compute_round());
        assert_eq!(p.rounds.len(), 1);
        let r = &p.rounds[0];
        assert_eq!(r.round, 0);
        assert_eq!(r.ticks, 17);
        assert_eq!(r.label, RoundLabel::ComputeBound);
        assert_eq!(r.critical_path, "round;client_update;local_epoch");
        assert_eq!(r.fault_points, 1);
        assert_eq!(r.retry_points, 1);
    }

    #[test]
    fn straggler_and_wire_labels() {
        let straggler = profile_of(&[
            "{\"t\":1,\"ev\":\"start\",\"name\":\"round\",\"round\":0}",
            "{\"t\":2,\"ev\":\"start\",\"name\":\"fault_inject\"}",
            "{\"t\":9,\"ev\":\"end\",\"name\":\"fault_inject\"}",
            "{\"t\":10,\"ev\":\"start\",\"name\":\"aggregate\"}",
            "{\"t\":11,\"ev\":\"end\",\"name\":\"aggregate\"}",
            "{\"t\":12,\"ev\":\"end\",\"name\":\"round\"}",
        ]);
        assert_eq!(straggler.rounds[0].label, RoundLabel::StragglerBound);
        assert_eq!(straggler.rounds[0].critical_path, "round;fault_inject");
        let wire = profile_of(&[
            "{\"t\":1,\"ev\":\"start\",\"name\":\"round\",\"round\":0}",
            "{\"t\":2,\"ev\":\"start\",\"name\":\"send_frame\"}",
            "{\"t\":9,\"ev\":\"end\",\"name\":\"send_frame\"}",
            "{\"t\":10,\"ev\":\"start\",\"name\":\"aggregate\"}",
            "{\"t\":11,\"ev\":\"end\",\"name\":\"aggregate\"}",
            "{\"t\":12,\"ev\":\"end\",\"name\":\"round\"}",
        ]);
        assert_eq!(wire.rounds[0].label, RoundLabel::WireBound);
    }

    #[test]
    fn critical_path_ties_break_toward_the_earlier_start() {
        let p = profile_of(&[
            "{\"t\":1,\"ev\":\"start\",\"name\":\"round\",\"round\":0}",
            "{\"t\":2,\"ev\":\"start\",\"name\":\"aggregate\"}",
            "{\"t\":4,\"ev\":\"end\",\"name\":\"aggregate\"}",
            "{\"t\":5,\"ev\":\"start\",\"name\":\"evaluate\"}",
            "{\"t\":7,\"ev\":\"end\",\"name\":\"evaluate\"}",
            "{\"t\":8,\"ev\":\"end\",\"name\":\"round\"}",
        ]);
        // aggregate and evaluate both last 2 ticks; aggregate started
        // first, so it wins the path.
        assert_eq!(p.rounds[0].critical_path, "round;aggregate");
    }

    #[test]
    fn phase_percentiles_use_nearest_rank() {
        // Ten client_update spans of durations 1..=10.
        let mut lines =
            vec!["{\"t\":1,\"ev\":\"start\",\"name\":\"round\",\"round\":0}".to_string()];
        let mut t = 2;
        for d in 1..=10u64 {
            lines.push(format!(
                "{{\"t\":{t},\"ev\":\"start\",\"name\":\"client_update\"}}"
            ));
            lines.push(format!(
                "{{\"t\":{},\"ev\":\"end\",\"name\":\"client_update\"}}",
                t + d
            ));
            t += d + 1;
        }
        lines.push(format!("{{\"t\":{t},\"ev\":\"end\",\"name\":\"round\"}}"));
        let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
        let p = profile_of(&refs);
        let cu = p.phase("client_update").expect("phase present");
        assert_eq!(cu.count, 10);
        assert_eq!((cu.min_ticks, cu.max_ticks), (1, 10));
        assert_eq!(cu.p50_ticks, 5); // rank ceil(10*0.50) = 5
        assert_eq!(cu.p95_ticks, 10); // rank ceil(10*0.95) = 10
        assert_eq!(cu.p99_ticks, 10);
    }

    #[test]
    fn profile_round_trips_through_json() {
        let p = profile_of(&compute_round());
        let doc = p.to_json();
        let back = Profile::from_json(&doc).expect("valid schema");
        assert_eq!(back, p);
        // And the serialized form is byte-stable.
        assert_eq!(back.to_json().to_json_string(), doc.to_json_string());
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        let doc = Json::Obj(vec![("schema".into(), Json::Str("bogus/v9".into()))]);
        assert!(matches!(
            Profile::from_json(&doc),
            Err(ObsError::Schema { .. })
        ));
    }

    #[test]
    fn empty_forest_profiles_to_zeroes() {
        let p = analyze(&SpanForest::default());
        assert_eq!(p.spans, 0);
        assert_eq!(p.total_ticks, 0);
        assert!(p.phases.is_empty() && p.rounds.is_empty());
    }
}
