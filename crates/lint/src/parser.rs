//! A small recursive-descent parser over the lexer's token stream.
//!
//! It recognises exactly the structure the v2 rules need — items
//! (`fn`, `impl`, `trait`, `mod`), `let` bindings with type
//! annotations, calls, method chains, closures, casts, and binary /
//! compound-assignment operators — and **recovers** on everything
//! else: an unrecognised token is skipped and parsing continues, so
//! the parser never fails on code rustc already accepted. Patterns
//! (in `match` arms, `for` loops, `let` destructuring) are skipped,
//! not modelled.
//!
//! Disambiguation notes:
//!
//! * `<` after an identifier in expression position is a comparison;
//!   generics are only parsed in type position (after `:`, `as`,
//!   `->`) and in `::<…>` turbofish form — the same rule rustc uses.
//! * `|` in expression-head position starts a closure; elsewhere it
//!   is bit-or.
//! * Struct literals `Path { … }` are recognised except in
//!   `if`/`while`/`for`/`match` head position, where `{` opens the
//!   body — again mirroring the real grammar.

use crate::ast::{Block, Expr, FileAst, FnDef, Param, Stmt};
use crate::lexer::{Tok, TokKind};

/// Parse one file's token stream (`code` holds the indices of
/// non-comment tokens, as built by the engine).
pub fn parse_file(toks: &[Tok], code: &[usize]) -> FileAst {
    let mut p = Parser {
        toks,
        code,
        pos: 0,
        out: FileAst::default(),
    };
    p.items(None, None);
    p.out
}

struct Parser<'a> {
    toks: &'a [Tok],
    code: &'a [usize],
    pos: usize,
    out: FileAst,
}

impl<'a> Parser<'a> {
    // ------------------------------------------------------------ cursor

    fn tok(&self, ahead: usize) -> Option<&'a Tok> {
        self.code.get(self.pos + ahead).map(|&i| &self.toks[i])
    }

    fn line(&self) -> usize {
        self.tok(0).map_or(0, |t| t.line)
    }

    fn at_ident(&self, name: &str) -> bool {
        self.tok(0).is_some_and(|t| t.is_ident(name))
    }

    fn at_punct(&self, c: char) -> bool {
        self.tok(0).is_some_and(|t| t.is_punct(c))
    }

    fn punct_at(&self, ahead: usize, c: char) -> bool {
        self.tok(ahead).is_some_and(|t| t.is_punct(c))
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.tok(0);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.at_punct(c) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.at_ident(name) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Skip a balanced region starting at the current `open` punct.
    fn skip_balanced(&mut self, open: char, close: char) {
        if !self.eat_punct(open) {
            return;
        }
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                None => return,
                Some(t) if t.is_punct(open) => depth += 1,
                Some(t) if t.is_punct(close) => depth -= 1,
                Some(_) => {}
            }
        }
    }

    /// Skip `#[…]` / `#![…]` attributes.
    fn skip_attrs(&mut self) {
        loop {
            if self.at_punct('#')
                && (self.punct_at(1, '[') || (self.punct_at(1, '!') && self.punct_at(2, '[')))
            {
                self.eat_punct('#');
                self.eat_punct('!');
                self.skip_balanced('[', ']');
            } else {
                return;
            }
        }
    }

    // ------------------------------------------------------------- items

    /// Parse items until `}` (when `inside_braces`) or end of input.
    fn items(&mut self, self_ty: Option<&str>, until: Option<char>) {
        loop {
            self.skip_attrs();
            let Some(t) = self.tok(0) else { return };
            if let Some(close) = until {
                if t.is_punct(close) {
                    self.pos += 1;
                    return;
                }
            }
            match &t.kind {
                TokKind::Ident => match t.text.as_str() {
                    "pub" => {
                        self.pos += 1;
                        if self.at_punct('(') {
                            self.skip_balanced('(', ')');
                        }
                    }
                    "const" if self.tok(1).is_some_and(|n| n.is_ident("fn")) => self.pos += 1,
                    "async" | "unsafe" | "default"
                        if self.tok(1).is_some_and(|n| {
                            n.is_ident("fn") || n.is_ident("unsafe") || n.is_ident("extern")
                        }) =>
                    {
                        self.pos += 1
                    }
                    "extern" => {
                        self.pos += 1;
                        if self.tok(0).is_some_and(|t| t.kind == TokKind::Str) {
                            self.pos += 1;
                        }
                    }
                    "fn" => {
                        self.pos += 1;
                        self.fn_def(self_ty);
                    }
                    "impl" => {
                        self.pos += 1;
                        let ty = self.impl_header();
                        self.items(ty.as_deref(), Some('}'));
                    }
                    "trait" => {
                        self.pos += 1;
                        let name = self
                            .tok(0)
                            .filter(|t| t.kind == TokKind::Ident)
                            .map(|t| t.text.clone());
                        self.skip_to_body_open();
                        self.items(name.as_deref(), Some('}'));
                    }
                    "mod" => {
                        self.pos += 1;
                        self.bump(); // name
                        if self.at_punct('{') {
                            self.pos += 1;
                            self.items(self_ty, Some('}'));
                        } else {
                            self.eat_punct(';');
                        }
                    }
                    "struct" | "enum" | "union" | "macro_rules" => {
                        self.pos += 1;
                        self.skip_item_rest();
                    }
                    "use" | "type" | "static" | "const" => {
                        self.pos += 1;
                        self.skip_to_semi();
                    }
                    _ => self.pos += 1,
                },
                _ => self.pos += 1,
            }
        }
    }

    /// After `impl`: skip generics, read the self type (the path after
    /// `for` when this is a trait impl), stop after the opening `{`.
    fn impl_header(&mut self) -> Option<String> {
        if self.at_punct('<') {
            self.skip_angle();
        }
        let mut ty: Option<String> = None;
        let mut current = String::new();
        loop {
            let Some(t) = self.tok(0) else { return ty };
            match &t.kind {
                TokKind::Punct('{') => {
                    self.pos += 1;
                    if !current.is_empty() {
                        ty = Some(current);
                    }
                    return ty;
                }
                TokKind::Ident if t.text == "for" => {
                    // `impl Trait for Type` — the self type follows.
                    current.clear();
                    self.pos += 1;
                }
                TokKind::Ident if t.text == "where" => {
                    // Keep whatever we collected; scan on to `{`.
                    if !current.is_empty() {
                        ty = Some(std::mem::take(&mut current));
                    }
                    self.pos += 1;
                }
                TokKind::Ident => {
                    // Last identifier wins: `fedwcm::Pool` → `Pool`.
                    current = t.text.clone();
                    self.pos += 1;
                }
                TokKind::Punct('<') => self.skip_angle(),
                _ => self.pos += 1,
            }
        }
    }

    /// Skip everything up to and including the next `{` at depth 0.
    fn skip_to_body_open(&mut self) {
        loop {
            match self.tok(0) {
                None => return,
                Some(t) if t.is_punct('{') => {
                    self.pos += 1;
                    return;
                }
                Some(t) if t.is_punct('<') => self.skip_angle(),
                Some(t) if t.is_punct('(') => self.skip_balanced('(', ')'),
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip the remainder of a `struct`/`enum`/`macro_rules` item:
    /// either to a `;` or over the balanced `{ … }` / `( … );`.
    fn skip_item_rest(&mut self) {
        loop {
            match self.tok(0) {
                None => return,
                Some(t) if t.is_punct(';') => {
                    self.pos += 1;
                    return;
                }
                Some(t) if t.is_punct('{') => {
                    self.skip_balanced('{', '}');
                    return;
                }
                Some(t) if t.is_punct('(') => self.skip_balanced('(', ')'),
                Some(t) if t.is_punct('<') => self.skip_angle(),
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip to and over the next `;` at brace/paren depth 0.
    fn skip_to_semi(&mut self) {
        loop {
            match self.tok(0) {
                None => return,
                Some(t) if t.is_punct(';') => {
                    self.pos += 1;
                    return;
                }
                Some(t) if t.is_punct('{') => self.skip_balanced('{', '}'),
                Some(t) if t.is_punct('(') => self.skip_balanced('(', ')'),
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip a balanced `< … >` region, counting single-`>` tokens.
    fn skip_angle(&mut self) {
        if !self.eat_punct('<') {
            return;
        }
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                None => return,
                Some(t) if t.is_punct('<') => depth += 1,
                Some(t) if t.is_punct('>') => depth -= 1,
                Some(t) if t.is_punct('(') => {
                    self.pos -= 1;
                    self.skip_balanced('(', ')');
                }
                Some(_) => {}
            }
        }
    }

    // ---------------------------------------------------------- fn items

    /// Parse a function after its `fn` keyword.
    fn fn_def(&mut self, self_ty: Option<&str>) {
        let line = self.line();
        let name = match self.tok(0) {
            Some(t) if t.kind == TokKind::Ident => {
                let n = t.text.clone();
                self.pos += 1;
                n
            }
            _ => return,
        };
        if self.at_punct('<') {
            self.skip_angle();
        }
        let mut params = Vec::new();
        if self.at_punct('(') {
            self.pos += 1;
            params = self.param_list(self_ty);
        }
        let ret = if self.at_punct('-') && self.punct_at(1, '>') {
            self.pos += 2;
            Some(self.type_text(&['{', ';', 'w']))
        } else {
            None
        };
        // `where` clause.
        if self.at_ident("where") {
            self.skip_to_body_open();
            self.pos -= 1; // re-see the `{`
        }
        let body = if self.at_punct('{') {
            self.pos += 1;
            self.block_body(self.line())
        } else {
            self.eat_punct(';');
            Block::default()
        };
        self.out.fns.push(FnDef {
            name,
            self_ty: self_ty.map(str::to_string),
            line,
            params,
            ret,
            body,
        });
    }

    /// Parse a parameter list after `(`, consuming the closing `)`.
    fn param_list(&mut self, self_ty: Option<&str>) -> Vec<Param> {
        let mut params = Vec::new();
        loop {
            self.skip_attrs();
            let Some(t) = self.tok(0) else { return params };
            if t.is_punct(')') {
                self.pos += 1;
                return params;
            }
            if t.is_punct(',') {
                self.pos += 1;
                continue;
            }
            // `self` receiver forms: `self`, `&self`, `&'a mut self`,
            // `mut self`, `self: Ty`.
            let mut probe = 0usize;
            while self.tok(probe).is_some_and(|t| {
                t.is_punct('&') || t.kind == TokKind::Lifetime || t.is_ident("mut")
            }) {
                probe += 1;
            }
            if self.tok(probe).is_some_and(|t| t.is_ident("self")) {
                self.pos += probe + 1;
                if self.eat_punct(':') {
                    let _ = self.type_text(&[',', ')']);
                }
                params.push(Param {
                    name: "self".to_string(),
                    ty: self_ty.unwrap_or("Self").to_string(),
                });
                continue;
            }
            // Plain `mut? ident : Type`; anything fancier records `_`.
            self.eat_ident("mut");
            let name = match self.tok(0) {
                Some(t) if t.kind == TokKind::Ident && self.punct_at(1, ':') => {
                    let n = t.text.clone();
                    self.pos += 2;
                    n
                }
                _ => {
                    // Destructuring pattern: skip to `:` at depth 0.
                    loop {
                        match self.tok(0) {
                            None => return params,
                            Some(t) if t.is_punct(':') => {
                                self.pos += 1;
                                break;
                            }
                            Some(t) if t.is_punct(')') => return params,
                            Some(t) if t.is_punct('(') => self.skip_balanced('(', ')'),
                            Some(t) if t.is_punct('[') => self.skip_balanced('[', ']'),
                            _ => {
                                self.pos += 1;
                            }
                        }
                    }
                    "_".to_string()
                }
            };
            let ty = self.type_text(&[',', ')']);
            params.push(Param { name, ty });
        }
    }

    /// Collect normalized type text until one of `stops` at depth 0
    /// (`'w'` stands for the `where` keyword). Does not consume the
    /// stop token.
    fn type_text(&mut self, stops: &[char]) -> String {
        let mut out = String::new();
        let mut depth = 0usize;
        loop {
            let Some(t) = self.tok(0) else { return out };
            if depth == 0 {
                match &t.kind {
                    TokKind::Punct(c) if stops.contains(c) => return out,
                    TokKind::Ident if t.text == "where" && stops.contains(&'w') => return out,
                    _ => {}
                }
            }
            match &t.kind {
                TokKind::Punct(c @ ('<' | '(' | '[')) => {
                    depth += 1;
                    out.push(*c);
                }
                TokKind::Punct(c @ ('>' | ')' | ']')) => {
                    if depth == 0 {
                        return out;
                    }
                    depth -= 1;
                    out.push(*c);
                }
                TokKind::Ident | TokKind::Number => {
                    if out
                        .chars()
                        .next_back()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                    {
                        out.push(' ');
                    }
                    out.push_str(&t.text);
                }
                TokKind::Lifetime => {
                    if !out.is_empty() && !out.ends_with(['&', ' ']) {
                        out.push(' ');
                    }
                    out.push_str(&t.text);
                    out.push(' ');
                }
                TokKind::Punct(c) => out.push(*c),
                _ => {}
            }
            self.pos += 1;
        }
    }

    // ------------------------------------------------------------ blocks

    /// Parse statements after `{`, consuming the closing `}`.
    fn block_body(&mut self, line: usize) -> Block {
        let mut stmts = Vec::new();
        loop {
            self.skip_attrs();
            let Some(t) = self.tok(0) else {
                return Block { stmts, line };
            };
            if t.is_punct('}') {
                self.pos += 1;
                return Block { stmts, line };
            }
            if t.is_punct(';') {
                self.pos += 1;
                continue;
            }
            if t.kind == TokKind::Ident {
                match t.text.as_str() {
                    "let" => {
                        stmts.push(self.let_stmt());
                        continue;
                    }
                    // Items nested inside bodies: reuse the item parser
                    // for a single step (it handles `fn`, `use`, …).
                    "fn" => {
                        self.pos += 1;
                        self.fn_def(None);
                        continue;
                    }
                    "pub" | "impl" | "trait" | "mod" | "struct" | "enum" | "union" | "use"
                    | "type" | "static" | "macro_rules" => {
                        self.item_in_block();
                        continue;
                    }
                    "const"
                        if self
                            .tok(1)
                            .is_some_and(|n| n.kind == TokKind::Ident && n.text != "fn")
                            && self.punct_at(2, ':') =>
                    {
                        self.pos += 1;
                        self.skip_to_semi();
                        continue;
                    }
                    _ => {}
                }
            }
            let before = self.pos;
            let e = self.expr(0, false);
            stmts.push(Stmt::Expr(e));
            self.eat_punct(';');
            if self.pos == before {
                // Recovery guarantee: always make progress.
                self.pos += 1;
            }
        }
    }

    /// One nested item inside a block (delegates to the item parser by
    /// parsing a single leading item).
    fn item_in_block(&mut self) {
        // Handle visibility then dispatch once.
        if self.eat_ident("pub") && self.at_punct('(') {
            self.skip_balanced('(', ')');
        }
        let Some(t) = self.tok(0) else { return };
        match t.text.as_str() {
            "fn" => {
                self.pos += 1;
                self.fn_def(None);
            }
            "impl" => {
                self.pos += 1;
                let ty = self.impl_header();
                self.items(ty.as_deref(), Some('}'));
            }
            "trait" => {
                self.pos += 1;
                let name = self
                    .tok(0)
                    .filter(|t| t.kind == TokKind::Ident)
                    .map(|t| t.text.clone());
                self.skip_to_body_open();
                self.items(name.as_deref(), Some('}'));
            }
            "mod" => {
                self.pos += 1;
                self.bump();
                if self.at_punct('{') {
                    self.pos += 1;
                    self.items(None, Some('}'));
                } else {
                    self.eat_punct(';');
                }
            }
            "struct" | "enum" | "union" | "macro_rules" => {
                self.pos += 1;
                self.skip_item_rest();
            }
            "use" | "type" | "static" => {
                self.pos += 1;
                self.skip_to_semi();
            }
            _ => {
                self.pos += 1;
            }
        }
    }

    /// `let` statement: `let mut? PAT (: Ty)? (= expr)? (else { … })? ;`
    fn let_stmt(&mut self) -> Stmt {
        let line = self.line();
        self.eat_ident("let");
        self.eat_ident("mut");
        let name = match self.tok(0) {
            Some(t)
                if t.kind == TokKind::Ident
                    && !matches!(t.text.as_str(), "_")
                    && (self.punct_at(1, ':')
                        || self.punct_at(1, '=')
                        || self.punct_at(1, ';')) =>
            {
                let n = t.text.clone();
                self.pos += 1;
                n
            }
            _ => {
                // Pattern binding (`let (a, b) = …`, `let Some(x) = …`):
                // skip to `:`, `=`, or `;` at depth 0.
                loop {
                    match self.tok(0) {
                        None => break,
                        Some(t) if t.is_punct(':') || t.is_punct('=') || t.is_punct(';') => break,
                        Some(t) if t.is_punct('(') => self.skip_balanced('(', ')'),
                        Some(t) if t.is_punct('[') => self.skip_balanced('[', ']'),
                        Some(t) if t.is_punct('{') => self.skip_balanced('{', '}'),
                        _ => {
                            self.pos += 1;
                        }
                    }
                }
                "_".to_string()
            }
        };
        let ty = if self.eat_punct(':') {
            Some(self.type_text(&['=', ';']))
        } else {
            None
        };
        let init = if self.eat_punct('=') {
            Some(self.expr(0, false))
        } else {
            None
        };
        // `let … else { … }`
        if self.at_ident("else") {
            self.pos += 1;
            if self.at_punct('{') {
                self.pos += 1;
                let _ = self.block_body(line);
            }
        }
        self.eat_punct(';');
        Stmt::Let {
            name,
            ty,
            init,
            line,
        }
    }

    // ------------------------------------------------------- expressions

    /// Pratt parser. `no_struct` suppresses struct-literal parsing in
    /// `if`/`while`/`for`/`match` head position.
    fn expr(&mut self, min_bp: u8, no_struct: bool) -> Expr {
        let mut lhs = self.prefix(no_struct);
        loop {
            let Some(t) = self.tok(0) else { return lhs };
            let line = t.line;
            // `as Ty` — binds tighter than any binary operator.
            if t.is_ident("as") {
                self.pos += 1;
                let ty = self.type_text(&[
                    ',', ';', ')', ']', '}', '{', '+', '-', '*', '/', '%', '=', '<', '>', '?', '.',
                    '&', '|', '^',
                ]);
                lhs = Expr::Cast {
                    expr: Box::new(lhs),
                    ty,
                    line,
                };
                continue;
            }
            let TokKind::Punct(c) = t.kind else {
                return lhs;
            };
            // Range `..` / `..=`.
            if c == '.' && self.punct_at(1, '.') {
                if min_bp > 1 {
                    return lhs;
                }
                self.pos += 2;
                self.eat_punct('=');
                let rhs = if self.range_end_follows() {
                    Box::new(self.expr(2, no_struct))
                } else {
                    Box::new(Expr::Opaque { line })
                };
                lhs = Expr::Binary {
                    op: "..".to_string(),
                    lhs: Box::new(lhs),
                    rhs,
                    line,
                };
                continue;
            }
            let Some((op, len, bp, assign)) = self.binary_op(c) else {
                return lhs;
            };
            if assign {
                if min_bp > 0 {
                    return lhs;
                }
                self.pos += len;
                let value = self.expr(0, no_struct);
                lhs = Expr::Assign {
                    op,
                    target: Box::new(lhs),
                    value: Box::new(value),
                    line,
                };
                continue;
            }
            if bp < min_bp {
                return lhs;
            }
            self.pos += len;
            let rhs = self.expr(bp + 1, no_struct);
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                line,
            };
        }
    }

    /// Does an expression follow the `..` we just consumed?
    fn range_end_follows(&self) -> bool {
        match self.tok(0) {
            None => false,
            Some(t) => !matches!(
                t.kind,
                TokKind::Punct(')')
                    | TokKind::Punct(']')
                    | TokKind::Punct('}')
                    | TokKind::Punct(',')
                    | TokKind::Punct(';')
                    | TokKind::Punct('{')
            ),
        }
    }

    /// Classify a binary / assignment operator starting at the current
    /// punct `c`. Returns `(spelling, token_len, binding_power,
    /// is_assignment)`.
    fn binary_op(&self, c: char) -> Option<(String, usize, u8, bool)> {
        let two = |d: char| self.punct_at(1, d);
        let three = |d: char, e: char| self.punct_at(1, d) && self.punct_at(2, e);
        Some(match c {
            '<' if three('<', '=') => ("<<=".into(), 3, 0, true),
            '>' if three('>', '=') => (">>=".into(), 3, 0, true),
            '+' if two('=') => ("+=".into(), 2, 0, true),
            '-' if two('=') => ("-=".into(), 2, 0, true),
            '*' if two('=') => ("*=".into(), 2, 0, true),
            '/' if two('=') => ("/=".into(), 2, 0, true),
            '%' if two('=') => ("%=".into(), 2, 0, true),
            '^' if two('=') => ("^=".into(), 2, 0, true),
            '&' if three('&', '=') => ("&&=".into(), 3, 0, true),
            '|' if three('|', '=') => ("||=".into(), 3, 0, true),
            '&' if two('=') => ("&=".into(), 2, 0, true),
            '|' if two('=') => ("|=".into(), 2, 0, true),
            '=' if !two('=') && !two('>') => ("=".into(), 1, 0, true),
            '|' if two('|') => ("||".into(), 2, 3, false),
            '&' if two('&') => ("&&".into(), 2, 4, false),
            '=' if two('=') => ("==".into(), 2, 5, false),
            '!' if two('=') => ("!=".into(), 2, 5, false),
            '<' if two('=') => ("<=".into(), 2, 5, false),
            '>' if two('=') => (">=".into(), 2, 5, false),
            '<' if two('<') => ("<<".into(), 2, 8, false),
            '>' if two('>') => (">>".into(), 2, 8, false),
            '<' => ("<".into(), 1, 5, false),
            '>' => (">".into(), 1, 5, false),
            '|' => ("|".into(), 1, 6, false),
            '^' => ("^".into(), 1, 6, false),
            '&' => ("&".into(), 1, 7, false),
            '+' => ("+".into(), 1, 9, false),
            '-' => ("-".into(), 1, 9, false),
            '*' => ("*".into(), 1, 10, false),
            '/' => ("/".into(), 1, 10, false),
            '%' => ("%".into(), 1, 10, false),
            _ => return None,
        })
    }

    /// Prefix / primary expressions, then postfix chains.
    fn prefix(&mut self, no_struct: bool) -> Expr {
        let Some(t) = self.tok(0) else {
            return Expr::Opaque { line: 0 };
        };
        let line = t.line;
        let mut e = match &t.kind {
            TokKind::Number | TokKind::Str | TokKind::Char => {
                self.pos += 1;
                Expr::Lit {
                    text: t.text.clone(),
                    line,
                }
            }
            TokKind::Lifetime => {
                // Loop label `'x: loop { … }`.
                self.pos += 1;
                self.eat_punct(':');
                return self.prefix(no_struct);
            }
            TokKind::Punct('&') => {
                self.pos += 1;
                self.eat_punct('&'); // `&&x` double-reference
                while self.tok(0).is_some_and(|t| t.kind == TokKind::Lifetime) {
                    self.pos += 1;
                }
                let mutable = self.eat_ident("mut");
                let inner = self.prefix_then_postfix_only(no_struct);
                Expr::Unary {
                    op: '&',
                    mutable,
                    expr: Box::new(inner),
                    line,
                }
            }
            TokKind::Punct(op @ ('*' | '!' | '-')) => {
                let op = *op;
                self.pos += 1;
                let inner = self.prefix_then_postfix_only(no_struct);
                Expr::Unary {
                    op,
                    mutable: false,
                    expr: Box::new(inner),
                    line,
                }
            }
            TokKind::Punct('|') => self.closure(line),
            TokKind::Punct('(') => {
                self.pos += 1;
                let items = self.expr_list(')');
                Expr::Tuple { items, line }
            }
            TokKind::Punct('[') => {
                self.pos += 1;
                let items = self.expr_list(']');
                Expr::Array { items, line }
            }
            TokKind::Punct('{') => {
                self.pos += 1;
                Expr::BlockExpr(self.block_body(line))
            }
            TokKind::Ident => match t.text.as_str() {
                "move" if self.tok(1).is_some_and(|n| n.is_punct('|')) => {
                    self.pos += 1;
                    let line = self.line();
                    self.closure(line)
                }
                "if" => {
                    self.pos += 1;
                    self.if_expr(line)
                }
                "match" => {
                    self.pos += 1;
                    let scrutinee = self.expr(0, true);
                    let arms = self.match_arms();
                    Expr::Match {
                        scrutinee: Box::new(scrutinee),
                        arms,
                        line,
                    }
                }
                "for" => {
                    self.pos += 1;
                    // Record a plain-identifier pattern (`d`, `mut d`)
                    // for the dataflow analyses, then skip the rest of
                    // the pattern up to `in` at depth 0.
                    let mut pat_idents: Vec<String> = Vec::new();
                    let mut pat_simple = true;
                    loop {
                        match self.tok(0) {
                            None => break,
                            Some(t) if t.is_ident("in") => {
                                self.pos += 1;
                                break;
                            }
                            Some(t) if t.is_punct('(') => {
                                pat_simple = false;
                                self.skip_balanced('(', ')');
                            }
                            Some(t) if t.is_punct('[') => {
                                pat_simple = false;
                                self.skip_balanced('[', ']');
                            }
                            Some(t) => {
                                match t.kind {
                                    TokKind::Ident if t.text == "mut" => {}
                                    TokKind::Ident => pat_idents.push(t.text.clone()),
                                    _ => pat_simple = false,
                                }
                                self.pos += 1;
                            }
                        }
                    }
                    let binding = if pat_simple && pat_idents.len() == 1 {
                        pat_idents.pop()
                    } else {
                        None
                    };
                    let head = self.expr(0, true);
                    let body = self.body_block();
                    Expr::Loop {
                        head: Some(Box::new(head)),
                        binding,
                        body,
                        line,
                    }
                }
                "while" => {
                    self.pos += 1;
                    let head = if self.at_ident("let") {
                        self.skip_let_pattern();
                        self.expr(0, true)
                    } else {
                        self.expr(0, true)
                    };
                    let body = self.body_block();
                    Expr::Loop {
                        head: Some(Box::new(head)),
                        binding: None,
                        body,
                        line,
                    }
                }
                "loop" => {
                    self.pos += 1;
                    let body = self.body_block();
                    Expr::Loop {
                        head: None,
                        binding: None,
                        body,
                        line,
                    }
                }
                "unsafe" if self.tok(1).is_some_and(|n| n.is_punct('{')) => {
                    self.pos += 2;
                    Expr::BlockExpr(self.block_body(line))
                }
                "return" | "break" => {
                    self.pos += 1;
                    let value = match self.tok(0) {
                        Some(t)
                            if !matches!(
                                t.kind,
                                TokKind::Punct(';')
                                    | TokKind::Punct(')')
                                    | TokKind::Punct('}')
                                    | TokKind::Punct(']')
                                    | TokKind::Punct(',')
                            ) =>
                        {
                            Some(Box::new(self.expr(0, no_struct)))
                        }
                        _ => None,
                    };
                    return Expr::Jump { value, line };
                }
                "continue" => {
                    self.pos += 1;
                    return Expr::Jump { value: None, line };
                }
                _ => self.path_expr(no_struct),
            },
            _ => {
                self.pos += 1;
                Expr::Opaque { line }
            }
        };
        e = self.postfix(e, no_struct);
        e
    }

    /// Prefix without re-entering the binary loop (for unary operands).
    fn prefix_then_postfix_only(&mut self, no_struct: bool) -> Expr {
        let e = self.prefix(no_struct);
        self.postfix(e, no_struct)
    }

    /// Skip `let PAT =` inside `if let` / `while let` heads.
    fn skip_let_pattern(&mut self) {
        self.eat_ident("let");
        loop {
            match self.tok(0) {
                None => return,
                Some(t) if t.is_punct('=') && !self.punct_at(1, '=') => {
                    self.pos += 1;
                    return;
                }
                Some(t) if t.is_punct('(') => self.skip_balanced('(', ')'),
                Some(t) if t.is_punct('[') => self.skip_balanced('[', ']'),
                Some(t) if t.is_punct('{') => self.skip_balanced('{', '}'),
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    fn if_expr(&mut self, line: usize) -> Expr {
        if self.at_ident("let") {
            self.skip_let_pattern();
        }
        let cond = self.expr(0, true);
        let then = self.body_block();
        let els = if self.eat_ident("else") {
            if self.at_ident("if") {
                let line = self.line();
                self.pos += 1;
                Some(Box::new(self.if_expr(line)))
            } else {
                let line = self.line();
                if self.eat_punct('{') {
                    Some(Box::new(Expr::BlockExpr(self.block_body(line))))
                } else {
                    None
                }
            }
        } else {
            None
        };
        Expr::If {
            cond: Box::new(cond),
            then,
            els,
            line,
        }
    }

    /// A `{ … }` block in statement-head position (loop/if bodies).
    fn body_block(&mut self) -> Block {
        let line = self.line();
        if self.eat_punct('{') {
            self.block_body(line)
        } else {
            Block::default()
        }
    }

    /// Match arms after the scrutinee: `{ PAT (if guard)? => expr , … }`.
    fn match_arms(&mut self) -> Vec<Expr> {
        let mut arms = Vec::new();
        if !self.eat_punct('{') {
            return arms;
        }
        loop {
            let Some(t) = self.tok(0) else { return arms };
            if t.is_punct('}') {
                self.pos += 1;
                return arms;
            }
            // Skip the pattern (and guard) to `=>` at depth 0.
            loop {
                match self.tok(0) {
                    None => return arms,
                    Some(t) if t.is_punct('=') && self.punct_at(1, '>') => {
                        self.pos += 2;
                        break;
                    }
                    Some(t) if t.is_punct('}') => return arms,
                    Some(t) if t.is_punct('(') => self.skip_balanced('(', ')'),
                    Some(t) if t.is_punct('[') => self.skip_balanced('[', ']'),
                    Some(t) if t.is_punct('{') => self.skip_balanced('{', '}'),
                    _ => {
                        self.pos += 1;
                    }
                }
            }
            arms.push(self.expr(0, false));
            self.eat_punct(',');
        }
    }

    /// Comma-separated expressions up to (and over) the closing punct.
    fn expr_list(&mut self, close: char) -> Vec<Expr> {
        let mut items = Vec::new();
        loop {
            let Some(t) = self.tok(0) else { return items };
            if t.is_punct(close) {
                self.pos += 1;
                return items;
            }
            if t.is_punct(',') || t.is_punct(';') {
                self.pos += 1;
                continue;
            }
            let before = self.pos;
            items.push(self.expr(0, false));
            if self.pos == before {
                self.pos += 1;
            }
        }
    }

    /// Path expression with optional macro bang, struct literal, or
    /// call/postfix continuation handled by the caller.
    fn path_expr(&mut self, no_struct: bool) -> Expr {
        let line = self.line();
        let mut segs: Vec<String> = Vec::new();
        loop {
            match self.tok(0) {
                Some(t) if t.kind == TokKind::Ident => {
                    segs.push(t.text.clone());
                    self.pos += 1;
                }
                _ => break,
            }
            if self.at_punct(':') && self.punct_at(1, ':') {
                if self.tok(2).is_some_and(|t| t.is_punct('<')) {
                    // Turbofish in path position: skip its content.
                    self.pos += 2;
                    self.skip_angle();
                    if self.at_punct(':') && self.punct_at(1, ':') {
                        self.pos += 2;
                        continue;
                    }
                    break;
                }
                if self.tok(2).is_some_and(|t| t.kind == TokKind::Ident) {
                    self.pos += 2;
                    continue;
                }
                break;
            }
            break;
        }
        if segs.is_empty() {
            self.pos += 1;
            return Expr::Opaque { line };
        }
        // Macro invocation.
        if self.at_punct('!')
            && (self.punct_at(1, '(') || self.punct_at(1, '[') || self.punct_at(1, '{'))
        {
            self.pos += 1;
            let (open, close) = match self.tok(0) {
                Some(t) if t.is_punct('(') => ('(', ')'),
                Some(t) if t.is_punct('[') => ('[', ']'),
                _ => ('{', '}'),
            };
            self.pos += 1;
            let args = self.macro_args(open, close);
            return Expr::Macro {
                name: segs.pop().unwrap_or_default(),
                args,
                line,
            };
        }
        // Struct literal.
        if !no_struct && self.at_punct('{') && self.struct_literal_follows() {
            self.pos += 1;
            let fields = self.struct_fields();
            return Expr::Struct { segs, fields, line };
        }
        Expr::Path { segs, line }
    }

    /// Heuristic: `{` after a path opens a struct literal when it is
    /// followed by `ident:`, `ident,`, `ident}`, or `..`.
    fn struct_literal_follows(&self) -> bool {
        match (self.tok(1), self.tok(2)) {
            (Some(a), Some(b)) if a.kind == TokKind::Ident => {
                b.is_punct(':') || b.is_punct(',') || b.is_punct('}')
            }
            (Some(a), Some(b)) => a.is_punct('.') && b.is_punct('.'),
            (Some(a), None) => a.is_punct('}'),
            _ => false,
        }
    }

    /// Struct literal fields after `{`, consuming the closing `}`.
    fn struct_fields(&mut self) -> Vec<(String, Expr)> {
        let mut fields = Vec::new();
        loop {
            let Some(t) = self.tok(0) else { return fields };
            if t.is_punct('}') {
                self.pos += 1;
                return fields;
            }
            if t.is_punct(',') {
                self.pos += 1;
                continue;
            }
            // `..base` functional update.
            if t.is_punct('.') && self.punct_at(1, '.') {
                self.pos += 2;
                let e = self.expr(2, false);
                fields.push(("..".to_string(), e));
                continue;
            }
            match self.tok(0) {
                Some(t) if t.kind == TokKind::Ident && self.punct_at(1, ':') => {
                    let name = t.text.clone();
                    let line = t.line;
                    self.pos += 2;
                    let e = self.expr(1, false);
                    let _ = line;
                    fields.push((name, e));
                }
                Some(t) if t.kind == TokKind::Ident => {
                    // Shorthand `field,`.
                    let name = t.text.clone();
                    let line = t.line;
                    self.pos += 1;
                    fields.push((
                        name.clone(),
                        Expr::Path {
                            segs: vec![name],
                            line,
                        },
                    ));
                }
                _ => {
                    self.pos += 1;
                }
            }
        }
    }

    /// Macro arguments: best-effort comma-separated expressions with
    /// token-skipping recovery, up to the matching close.
    fn macro_args(&mut self, open: char, close: char) -> Vec<Expr> {
        let mut args = Vec::new();
        let mut depth = 1usize;
        loop {
            let Some(t) = self.tok(0) else { return args };
            if t.is_punct(close) {
                depth -= 1;
                self.pos += 1;
                if depth == 0 {
                    return args;
                }
                continue;
            }
            if t.is_punct(open) {
                depth += 1;
                self.pos += 1;
                continue;
            }
            if t.is_punct(',') || t.is_punct(';') {
                self.pos += 1;
                continue;
            }
            let before = self.pos;
            args.push(self.expr(0, false));
            if self.pos == before {
                self.pos += 1;
            }
        }
    }

    /// Closure after (and including) the leading `|`.
    fn closure(&mut self, line: usize) -> Expr {
        let mut params = Vec::new();
        if self.at_punct('|') && self.punct_at(1, '|') {
            self.pos += 2; // `||`
        } else {
            self.eat_punct('|');
            while let Some(t) = self.tok(0) {
                if t.is_punct('|') {
                    self.pos += 1;
                    break;
                }
                if t.is_punct(',') {
                    self.pos += 1;
                    continue;
                }
                self.eat_ident("mut");
                let name = match self.tok(0) {
                    Some(t) if t.kind == TokKind::Ident => {
                        let n = t.text.clone();
                        self.pos += 1;
                        n
                    }
                    _ => {
                        // Pattern parameter: skip to `,` / `:` / `|`.
                        loop {
                            match self.tok(0) {
                                None => break,
                                Some(t)
                                    if t.is_punct(',') || t.is_punct('|') || t.is_punct(':') =>
                                {
                                    break
                                }
                                Some(t) if t.is_punct('(') => self.skip_balanced('(', ')'),
                                _ => {
                                    self.pos += 1;
                                }
                            }
                        }
                        "_".to_string()
                    }
                };
                let ty = if self.eat_punct(':') {
                    self.type_text(&[',', '|'])
                } else {
                    String::new()
                };
                params.push(Param { name, ty });
            }
        }
        // Optional `-> Ty` forces a block body.
        if self.at_punct('-') && self.punct_at(1, '>') {
            self.pos += 2;
            let _ = self.type_text(&['{']);
        }
        let body = self.expr(0, false);
        Expr::Closure {
            params,
            body: Box::new(body),
            line,
        }
    }

    /// Postfix chains: `.method(…)`, `.field`, `(call)`, `[index]`, `?`.
    fn postfix(&mut self, mut e: Expr, no_struct: bool) -> Expr {
        loop {
            let Some(t) = self.tok(0) else { return e };
            match &t.kind {
                TokKind::Punct('?') => self.pos += 1,
                TokKind::Punct('(') => {
                    let line = t.line;
                    self.pos += 1;
                    let args = self.expr_list(')');
                    e = Expr::Call {
                        callee: Box::new(e),
                        args,
                        line,
                    };
                }
                TokKind::Punct('[') => {
                    let line = t.line;
                    self.pos += 1;
                    let mut items = self.expr_list(']');
                    let index = items.pop().unwrap_or(Expr::Opaque { line });
                    e = Expr::Index {
                        base: Box::new(e),
                        index: Box::new(index),
                        line,
                    };
                }
                TokKind::Punct('.') if !self.punct_at(1, '.') => {
                    self.pos += 1;
                    match self.tok(0) {
                        Some(n) if n.kind == TokKind::Ident && n.text == "await" => {
                            self.pos += 1;
                        }
                        Some(n) if n.kind == TokKind::Ident => {
                            let name = n.text.clone();
                            let line = n.line;
                            self.pos += 1;
                            // Turbofish `::<…>`.
                            let mut turbofish = None;
                            if self.at_punct(':')
                                && self.punct_at(1, ':')
                                && self.tok(2).is_some_and(|t| t.is_punct('<'))
                            {
                                self.pos += 2;
                                self.eat_punct('<');
                                turbofish = Some(self.type_text(&['>']));
                                self.eat_punct('>');
                            }
                            if self.at_punct('(') {
                                self.pos += 1;
                                let args = self.expr_list(')');
                                e = Expr::MethodCall {
                                    recv: Box::new(e),
                                    method: name,
                                    turbofish,
                                    args,
                                    line,
                                };
                            } else {
                                e = Expr::Field {
                                    base: Box::new(e),
                                    name,
                                    line,
                                };
                            }
                        }
                        Some(n) if n.kind == TokKind::Number => {
                            let name = n.text.clone();
                            let line = n.line;
                            self.pos += 1;
                            e = Expr::Field {
                                base: Box::new(e),
                                name,
                                line,
                            };
                        }
                        _ => return e,
                    }
                }
                _ => return e,
            }
            let _ = no_struct;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Stmt};
    use crate::lexer::lex;

    fn parse(src: &str) -> FileAst {
        let toks = lex(src);
        let code: Vec<usize> = toks
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_comment())
            .map(|(i, _)| i)
            .collect();
        parse_file(&toks, &code)
    }

    #[test]
    fn fn_signature_parsed() {
        let ast = parse("pub fn f(x: &mut [f64], n: usize) -> f64 { 0.0 }\n");
        assert_eq!(ast.fns.len(), 1);
        let f = &ast.fns[0];
        assert_eq!(f.name, "f");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].ty, "&mut[f64]");
        assert_eq!(f.params[1].ty, "usize");
        assert_eq!(f.ret.as_deref(), Some("f64"));
    }

    #[test]
    fn impl_methods_carry_self_type() {
        let ast = parse(
            "impl Pool { fn push(&mut self, j: Job) {} }\nimpl Fmt for Pool { fn fmt(&self) {} }\n",
        );
        assert_eq!(ast.fns.len(), 2);
        assert_eq!(ast.fns[0].self_ty.as_deref(), Some("Pool"));
        assert_eq!(ast.fns[0].params[0].name, "self");
        assert_eq!(ast.fns[1].self_ty.as_deref(), Some("Pool"));
    }

    #[test]
    fn let_types_and_inits() {
        let ast = parse("fn f() { let mut acc: f64 = 0.0; let n = xs.len(); }\n");
        let body = &ast.fns[0].body;
        match &body.stmts[0] {
            Stmt::Let { name, ty, .. } => {
                assert_eq!(name, "acc");
                assert_eq!(ty.as_deref(), Some("f64"));
            }
            s => panic!("expected let, got {s:?}"),
        }
        match &body.stmts[1] {
            Stmt::Let { name, init, .. } => {
                assert_eq!(name, "n");
                assert!(matches!(init, Some(Expr::MethodCall { method, .. }) if method == "len"));
            }
            s => panic!("expected let, got {s:?}"),
        }
    }

    #[test]
    fn method_chain_with_turbofish() {
        let ast = parse("fn f(xs: &[f32]) -> f32 { xs.iter().map(|x| x * x).sum::<f32>() }\n");
        let body = &ast.fns[0].body;
        let Stmt::Expr(Expr::MethodCall {
            method, turbofish, ..
        }) = &body.stmts[0]
        else {
            panic!("expected a method call statement");
        };
        assert_eq!(method, "sum");
        assert_eq!(turbofish.as_deref(), Some("f32"));
    }

    #[test]
    fn compound_assign_in_loop() {
        let ast = parse("fn f(xs: &[f64]) { let mut acc = 0.0; for x in xs { acc += x; } }\n");
        let mut saw = false;
        ast.fns[0].body.walk(&mut |e| {
            if let Expr::Assign { op, target, .. } = e {
                if op == "+=" {
                    assert_eq!(target.base_ident(), Some("acc"));
                    saw = true;
                }
            }
        });
        assert!(saw, "`+=` assignment not found");
    }

    #[test]
    fn closures_and_calls() {
        let ast = parse("fn f(n: usize) { parallel_map(n, 4, |i| { work(i) }); }\n");
        let mut call = false;
        let mut closure = false;
        ast.fns[0].body.walk(&mut |e| match e {
            Expr::Call { callee, .. } => {
                if let Expr::Path { segs, .. } = &**callee {
                    if segs.last().is_some_and(|s| s == "parallel_map") {
                        call = true;
                    }
                }
            }
            Expr::Closure { params, .. } => {
                assert_eq!(params.len(), 1);
                assert_eq!(params[0].name, "i");
                closure = true;
            }
            _ => {}
        });
        assert!(call && closure);
    }

    #[test]
    fn casts_are_modelled() {
        let ast = parse("fn f(n: u64) -> u32 { n as u32 }\n");
        let Stmt::Expr(Expr::Cast { ty, expr, .. }) = &ast.fns[0].body.stmts[0] else {
            panic!("expected a cast statement");
        };
        assert_eq!(ty, "u32");
        assert!(matches!(&**expr, Expr::Path { segs, .. } if segs == &["n"]));
    }

    #[test]
    fn comparison_is_not_generics() {
        let ast = parse("fn f(a: usize, b: usize) -> bool { a < b && b > a }\n");
        let mut lt = 0;
        ast.fns[0].body.walk(&mut |e| {
            if let Expr::Binary { op, .. } = e {
                if op == "<" || op == ">" {
                    lt += 1;
                }
            }
        });
        assert_eq!(lt, 2);
    }

    #[test]
    fn match_arms_and_struct_literals() {
        let ast = parse(
            "fn f(x: Option<u32>) -> P { match x { Some(v) => g(v), None => h(), } ; P { a: 1, b } }\n",
        );
        let mut arms = 0;
        let mut fields = 0;
        ast.fns[0].body.walk(&mut |e| match e {
            Expr::Match { arms: a, .. } => arms = a.len(),
            Expr::Struct { fields: f, .. } => fields = f.len(),
            _ => {}
        });
        assert_eq!(arms, 2);
        assert_eq!(fields, 2);
    }

    #[test]
    fn nested_fns_and_trait_methods_found() {
        let ast = parse(
            "trait T { fn provided(&self) -> u32 { 1 } fn required(&self); }\nfn outer() { fn inner() {} }\n",
        );
        // A nested fn completes (and is pushed) before its enclosing fn.
        let names: Vec<&str> = ast.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["provided", "required", "inner", "outer"]);
    }

    #[test]
    fn range_and_ref_patterns_do_not_derail() {
        let ast = parse("fn f(xs: &[f64]) { for i in 0..xs.len() { g(&xs[i], &mut XS[..n]); } }\n");
        assert_eq!(ast.fns.len(), 1);
        let mut calls = 0;
        ast.fns[0].body.walk(&mut |e| {
            if matches!(e, Expr::Call { .. }) {
                calls += 1;
            }
        });
        assert!(calls >= 1);
    }

    #[test]
    fn recovers_on_exotic_items() {
        // Consts, statics, macros, generics with where clauses: the
        // parser must skip them and still find the fn.
        let src = "\
static X: u64 = 9;
const Y: &str = \"s\";
macro_rules! m { ($x:expr) => { $x }; }
pub fn found<T: Clone>(t: T) -> T where T: Default { m!(t.clone()) }
";
        let ast = parse(src);
        assert_eq!(ast.fns.len(), 1);
        assert_eq!(ast.fns[0].name, "found");
    }
}
