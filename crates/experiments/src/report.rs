//! Table/series formatting and multi-trial aggregation.

use crate::cli::Cli;
use crate::methods::{build_method, Method};
use crate::setup::ExpConfig;
use fedwcm_fl::History;

/// Run one `(condition, method)` cell, averaging final accuracy over
/// `cli.trials` seeds (the paper reports 3-seed means).
pub fn run_cell(exp: &ExpConfig, method: Method, cli: &Cli) -> f64 {
    let mut acc = 0.0;
    for t in 0..cli.trials {
        let mut e = exp.clone();
        e.seed = exp.seed.wrapping_add(1000 * t as u64);
        if let Some(r) = cli.rounds {
            e.rounds = r;
        }
        let task = e.prepare();
        let sim = task.simulation();
        let mut algo = build_method(method, &task);
        let history = sim.run(algo.as_mut());
        acc += history.final_accuracy(3);
    }
    acc / cli.trials as f64
}

/// Run one cell and return the full history of the **first** trial
/// (figures need the trajectory, not just the endpoint).
pub fn run_history(exp: &ExpConfig, method: Method, cli: &Cli) -> History {
    let mut e = exp.clone();
    if let Some(r) = cli.rounds {
        e.rounds = r;
    }
    let task = e.prepare();
    let sim = task.simulation();
    let mut algo = build_method(method, &task);
    sim.run(algo.as_mut())
}

/// Print a markdown-style table: one row per label, one column per
/// header, 4-decimal accuracies (the paper's format).
pub fn print_table(title: &str, headers: &[String], rows: &[(String, Vec<f64>)]) {
    println!("\n## {title}\n");
    print!("| {:<22} |", "");
    for h in headers {
        print!(" {h:>10} |");
    }
    println!();
    print!("|{}|", "-".repeat(24));
    for _ in headers {
        print!("{}|", "-".repeat(12));
    }
    println!();
    for (label, values) in rows {
        print!("| {label:<22} |");
        for v in values {
            print!(" {v:>10.4} |");
        }
        println!();
    }
}

/// Print an accuracy-vs-round series as CSV (round, then one column per
/// method) — the figure data.
pub fn print_series(title: &str, histories: &[History]) {
    println!("\n## {title} (CSV: round,{})", join_names(histories));
    // Union of evaluated rounds (all histories share eval cadence).
    let rounds: Vec<usize> = histories
        .first()
        .map(|h| h.accuracy_series().iter().map(|&(r, _)| r).collect())
        .unwrap_or_default();
    for (i, r) in rounds.iter().enumerate() {
        print!("{r}");
        for h in histories {
            let series = h.accuracy_series();
            if let Some(&(_, acc)) = series.get(i) {
                print!(",{acc:.4}");
            } else {
                print!(",");
            }
        }
        println!();
    }
}

fn join_names(histories: &[History]) -> String {
    histories
        .iter()
        .map(|h| h.name.clone())
        .collect::<Vec<_>>()
        .join(",")
}

/// Convenience: format a float table cell vector from (method → accuracy).
pub fn accuracy_row(label: impl Into<String>, values: Vec<f64>) -> (String, Vec<f64>) {
    (label.into(), values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::Scale;
    use fedwcm_data::synth::DatasetPreset;

    #[test]
    fn run_cell_smoke() {
        let exp = ExpConfig::new(DatasetPreset::FashionMnist, 1.0, 0.6, Scale::Smoke, 5);
        let cli = Cli { scale: Scale::Smoke, ..Cli::default() };
        let acc = run_cell(&exp, Method::FedAvg, &cli);
        assert!((0.0..=1.0).contains(&acc));
        assert!(acc > 0.2, "smoke FedAvg acc {acc}");
    }

    #[test]
    fn run_history_has_records() {
        let exp = ExpConfig::new(DatasetPreset::FashionMnist, 1.0, 0.6, Scale::Smoke, 6);
        let cli = Cli { scale: Scale::Smoke, ..Cli::default() };
        let h = run_history(&exp, Method::FedCm, &cli);
        assert_eq!(h.records.len(), exp.rounds);
        assert!(!h.accuracy_series().is_empty());
    }

    #[test]
    fn rounds_override_applies() {
        let exp = ExpConfig::new(DatasetPreset::FashionMnist, 1.0, 0.6, Scale::Smoke, 7);
        let cli = Cli { rounds: Some(3), ..Cli::default() };
        let h = run_history(&exp, Method::FedAvg, &cli);
        assert_eq!(h.records.len(), 3);
    }
}
