//! Figures 18/19 (Appendix D): ten heterogeneous-FL methods on CIFAR-10
//! at β = 0.1 with a **balanced** global distribution (IF = 1) — FedCM's
//! home turf. Fig. 18 reports training behaviour (we print the train-loss
//! series), Fig. 19 test accuracy.

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::{print_series, run_history};
use fedwcm_experiments::{parse_args, ExpConfig, Method};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let exp = ExpConfig::new(DatasetPreset::Cifar10, 1.0, 0.1, cli.scale, cli.seed);
    let mut histories = Vec::new();
    for m in Method::hetero_panel() {
        histories.push(run_history(&exp, m, &cli));
        console.info(format!("[fig18-19] {} done", m.label()));
    }

    // Fig. 18: training loss per round.
    println!(
        "\n## Fig.18 train loss (CSV: round,{})",
        histories
            .iter()
            .map(|h| h.name.clone())
            .collect::<Vec<_>>()
            .join(",")
    );
    let rounds = histories[0].records.len();
    for r in 0..rounds {
        print!("{r}");
        for h in &histories {
            match h.records[r].train_loss {
                Some(loss) => print!(",{loss:.4}"),
                None => print!(",-"),
            }
        }
        println!();
    }

    // Fig. 19: test accuracy.
    print_series("Fig.19 test accuracy (beta=0.1, IF=1)", &histories);
    println!("\n# final accuracies:");
    let mut finals: Vec<(String, f64)> = histories
        .iter()
        .map(|h| (h.name.clone(), h.final_accuracy(3)))
        .collect();
    finals.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (name, acc) in &finals {
        println!("{name}: {acc:.4}");
    }
    println!(
        "\nExpected shape (paper Figs. 18/19): FedCM converges fastest and\n\
         reaches the highest accuracy in this balanced-but-heterogeneous\n\
         setting; SAM-family methods start slowly."
    );
}
