//! FedProx (Li et al., 2020): proximal regularisation towards the global
//! model during local training.

use fedwcm_fl::algorithm::{
    server_step, uniform_average, FederatedAlgorithm, RoundInput, RoundLog,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_nn::loss::CrossEntropy;

/// FedProx: each local step adds `μ (x − x_r)` to the gradient, pulling
/// the local iterate towards the round-start global model.
pub struct FedProx {
    /// Proximal coefficient μ (paper-typical 0.01–0.1).
    pub mu: f32,
}

impl FedProx {
    /// FedProx with the given proximal coefficient.
    pub fn new(mu: f32) -> Self {
        assert!(mu >= 0.0, "mu must be non-negative");
        FedProx { mu }
    }
}

impl FederatedAlgorithm for FedProx {
    fn name(&self) -> String {
        format!("FedProx(mu={})", self.mu)
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        let mu = self.mu;
        run_local_sgd(env, global, &spec, |grad, params, _| {
            for ((g, p), x0) in grad.iter_mut().zip(params).zip(global) {
                *g += mu * (p - x0);
            }
        })
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        let mut dir = vec![0.0f32; global.len()];
        uniform_average(&input.updates, &mut dir);
        server_step(global, &dir, input.cfg, input.mean_batches());
        RoundLog::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{build_sim, small_task};

    #[test]
    fn learns_heterogeneous_task() {
        let (train, test, cfg) = small_task(33, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.1); // strong skew
        let h = sim.run(&mut FedProx::new(0.01));
        assert!(h.final_accuracy(1) > 0.45, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn zero_mu_matches_fedavg() {
        let (train, test, cfg) = small_task(34, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.6);
        let hp = sim.run(&mut FedProx::new(0.0));
        let ha = sim.run(&mut crate::FedAvg::new());
        // Identical trajectories: same seeds, same directions.
        for (a, b) in hp.records.iter().zip(&ha.records) {
            assert_eq!(a.test_acc, b.test_acc);
        }
    }

    #[test]
    fn large_mu_restrains_local_drift() {
        // With huge μ the local models barely move ⇒ tiny server updates.
        let (train, test, cfg) = small_task(35, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.6);
        // μ must respect lr·μ < 1 for the prox step to contract.
        let h_small = sim.run(&mut FedProx::new(0.0));
        let h_big = sim.run(&mut FedProx::new(5.0));
        let n_small: f64 = h_small.records.iter().map(|r| r.update_norm).sum();
        let n_big: f64 = h_big.records.iter().map(|r| r.update_norm).sum();
        assert!(n_big < n_small * 0.5, "big-mu norm {n_big} vs {n_small}");
    }
}
