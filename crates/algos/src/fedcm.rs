//! FedCM (Xu et al., 2021): client-level momentum.
//!
//! Every local step blends the mini-batch gradient with the previous
//! round's aggregated direction: `v = α·g + (1−α)·Δ_r` (Eq. 2/6). This is
//! the method whose long-tail failure motivates FedWCM; it is also the
//! chassis for the paper's "+Focal Loss / +Balance Loss / +Balance
//! Sampler" variants, exposed here via [`FedCm::with_loss`] and
//! [`FedCm::with_balanced_sampler`].

use fedwcm_fl::algorithm::{
    server_step, state_from_vec, state_to_vec, uniform_average, FederatedAlgorithm, RoundInput,
    RoundLog, StateError,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_nn::loss::{CrossEntropy, Loss};
use fedwcm_nn::opt::momentum_blend;
use std::sync::Arc;

/// Client-momentum federated learning with a fixed momentum value α.
pub struct FedCm {
    /// Momentum value α (paper default 0.1): weight on the *local*
    /// gradient; `1 − α` goes to the global momentum.
    pub alpha: f32,
    momentum: Vec<f32>,
    loss: Arc<dyn Loss>,
    balanced_sampler: bool,
    label: String,
}

impl FedCm {
    /// Standard FedCM with cross-entropy and α = 0.1.
    pub fn new(alpha: f32) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha must be in [0,1]");
        FedCm {
            alpha,
            momentum: Vec::new(),
            loss: Arc::new(CrossEntropy),
            balanced_sampler: false,
            label: "FedCM".into(),
        }
    }

    /// FedCM with a custom loss ("+Focal Loss", "+Balance Loss").
    pub fn with_loss(alpha: f32, loss: Arc<dyn Loss>, label: impl Into<String>) -> Self {
        let mut s = Self::new(alpha);
        s.loss = loss;
        s.label = label.into();
        s
    }

    /// FedCM with the class-balanced local sampler ("+Balance Sampler").
    pub fn with_balanced_sampler(alpha: f32) -> Self {
        let mut s = Self::new(alpha);
        s.balanced_sampler = true;
        s.label = "FedCM+BalanceSampler".into();
        s
    }

    /// Current global momentum (empty before the first aggregation).
    pub fn momentum(&self) -> &[f32] {
        &self.momentum
    }
}

impl FederatedAlgorithm for FedCm {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: self.loss.as_ref(),
            balanced_sampler: self.balanced_sampler,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        let alpha = self.alpha;
        let momentum = &self.momentum;
        let mut v = vec![0.0f32; global.len()];
        run_local_sgd(env, global, &spec, move |grad, _, _| {
            if momentum.is_empty() {
                // Round 0: Δ_0 = 0 ⇒ v = α·g. (Scaling by α only rescales
                // the effective first-round lr, matching the reference.)
                for g in grad.iter_mut() {
                    *g *= alpha;
                }
            } else {
                momentum_blend(&mut v, grad, momentum, alpha);
                grad.copy_from_slice(&v);
            }
        })
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        if self.momentum.is_empty() {
            self.momentum = vec![0.0f32; global.len()];
        }
        uniform_average(&input.updates, &mut self.momentum);
        server_step(global, &self.momentum, input.cfg, input.mean_batches());
        RoundLog {
            alpha: Some(self.alpha as f64),
            weights: None,
        }
    }

    // α, loss, and sampler are construction-time configuration; the global
    // momentum buffer is the only cross-round state.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(state_from_vec(&self.momentum))
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        self.momentum = state_to_vec(bytes)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{build_sim, small_task};
    use fedwcm_nn::loss::FocalLoss;

    #[test]
    fn learns_balanced_task_fast() {
        let (train, test, cfg) = small_task(41, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.1);
        let h = sim.run(&mut FedCm::new(0.1));
        assert!(h.final_accuracy(1) > 0.5, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn momentum_buffer_updates_each_round() {
        let (train, test, cfg) = small_task(42, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.6);
        let mut algo = FedCm::new(0.1);
        assert!(algo.momentum().is_empty());
        let _ = sim.run(&mut algo);
        assert!(!algo.momentum().is_empty());
        let norm: f32 = algo.momentum().iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!(norm > 0.0, "momentum never populated");
    }

    #[test]
    fn alpha_one_degenerates_towards_fedavg_direction() {
        // α = 1 means v = g every step: trajectory equals FedAvg's.
        let (train, test, cfg) = small_task(43, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.6);
        let h_cm = sim.run(&mut FedCm::new(1.0));
        let h_avg = sim.run(&mut crate::FedAvg::new());
        for (a, b) in h_cm.records.iter().zip(&h_avg.records) {
            assert_eq!(a.test_acc, b.test_acc);
        }
    }

    #[test]
    fn variant_constructors_label_correctly() {
        let f = FedCm::with_loss(0.1, Arc::new(FocalLoss { gamma: 2.0 }), "FedCM+Focal");
        assert_eq!(f.name(), "FedCM+Focal");
        let b = FedCm::with_balanced_sampler(0.1);
        assert_eq!(b.name(), "FedCM+BalanceSampler");
        assert!(b.balanced_sampler);
    }

    #[test]
    fn round_log_reports_alpha() {
        let (train, test, mut cfg) = small_task(44, 1.0);
        cfg.rounds = 2;
        let sim = build_sim(&train, &test, cfg, 0.6);
        let h = sim.run(&mut FedCm::new(0.3));
        assert_eq!(h.records[0].alpha, Some(0.3f32 as f64));
    }
}
