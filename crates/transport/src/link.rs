//! The delivery substrate: a [`Link`] trait and its deterministic
//! in-memory implementation.
//!
//! A link moves opaque frame bytes from sender to receiver under a
//! logical clock. [`InMemoryLink`] consults a [`NetPlan`] at send time —
//! the fault drawn for `(round, client, attempt)` decides whether the
//! frame is discarded, damaged, duplicated, held back, or queued
//! normally — and releases queued frames in deterministic `(due, id)`
//! order as the clock advances. Because both the plan and the queue are
//! pure functions of their inputs, a run over this link is bitwise
//! reproducible across thread counts; a future process/socket link can
//! implement the same trait and inherit the already chaos-tested
//! protocol above it.

use crate::plan::{NetFault, NetPlan};

/// Logical ticks a frame spends in flight on a healthy link.
pub const LINK_LATENCY: u64 = 1;

/// Extra in-flight ticks added by a [`NetFault::Reorder`], enough to land
/// the frame behind traffic sent one tick later.
pub const REORDER_EXTRA: u64 = 1;

/// Logical ticks per simulated round: a [`NetFault::Delay`] of `r` rounds
/// parks the frame `r * ROUND_TICKS` ticks out, far past any per-attempt
/// deadline, so delayed traffic can never satisfy an in-round retry.
pub const ROUND_TICKS: u64 = 1024;

/// Sender-side context identifying one frame transmission attempt; the
/// coordinates of the [`NetPlan`] fault draw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameCtx {
    /// Simulation round of the delivery.
    pub round: u64,
    /// Client whose upload is being carried.
    pub client: u64,
    /// Zero-based transmission attempt.
    pub attempt: u32,
}

/// A one-way frame channel under a logical clock.
pub trait Link {
    /// Transmit `frame` under `ctx`. The link may lose, damage,
    /// duplicate, or hold back the frame per its fault model.
    fn send(&mut self, ctx: FrameCtx, frame: Vec<u8>);

    /// Advance the link's logical clock by one tick.
    fn tick(&mut self);

    /// The link's current logical time.
    fn now(&self) -> u64;

    /// Drain every frame whose delivery time has arrived, in
    /// deterministic arrival order.
    fn poll(&mut self) -> Vec<Vec<u8>>;
}

struct QueuedFrame {
    due: u64,
    id: u64,
    bytes: Vec<u8>,
}

/// Deterministic in-memory [`Link`] driven by a [`NetPlan`].
pub struct InMemoryLink {
    plan: NetPlan,
    now: u64,
    next_id: u64,
    queue: Vec<QueuedFrame>,
}

fn flip_bit(frame: &mut [u8], raw_bit: u64) {
    if frame.is_empty() {
        return;
    }
    let bits = (frame.len() as u64).saturating_mul(8);
    let bit = raw_bit % bits;
    let byte = usize::try_from(bit / 8).unwrap_or(0);
    frame[byte] ^= 1u8 << (bit % 8);
}

impl InMemoryLink {
    /// A fresh link at tick 0 under `plan`.
    pub fn new(plan: NetPlan) -> Self {
        InMemoryLink {
            plan,
            now: 0,
            next_id: 0,
            queue: Vec::new(),
        }
    }

    fn enqueue(&mut self, due: u64, bytes: Vec<u8>) {
        let id = self.next_id;
        self.next_id += 1;
        self.queue.push(QueuedFrame { due, id, bytes });
    }
}

impl Link for InMemoryLink {
    fn send(&mut self, ctx: FrameCtx, mut frame: Vec<u8>) {
        let due = self.now + LINK_LATENCY;
        match self.plan.net_fault_for(ctx.round, ctx.client, ctx.attempt) {
            Some(NetFault::Drop) => {}
            Some(NetFault::Corrupt { bit }) => {
                flip_bit(&mut frame, bit);
                self.enqueue(due, frame);
            }
            Some(NetFault::Duplicate) => {
                self.enqueue(due, frame.clone());
                self.enqueue(due, frame);
            }
            Some(NetFault::Reorder) => {
                self.enqueue(due + REORDER_EXTRA, frame);
            }
            Some(NetFault::Delay { rounds }) => {
                self.enqueue(due + ROUND_TICKS * rounds as u64, frame);
            }
            None => self.enqueue(due, frame),
        }
    }

    fn tick(&mut self) {
        self.now += 1;
    }

    fn now(&self) -> u64 {
        self.now
    }

    fn poll(&mut self) -> Vec<Vec<u8>> {
        let now = self.now;
        let mut ready: Vec<QueuedFrame> = Vec::new();
        let mut rest: Vec<QueuedFrame> = Vec::new();
        for q in self.queue.drain(..) {
            if q.due <= now {
                ready.push(q);
            } else {
                rest.push(q);
            }
        }
        self.queue = rest;
        ready.sort_by_key(|q| (q.due, q.id));
        ready.into_iter().map(|q| q.bytes).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::NetConfig;

    fn ctx(client: u64, attempt: u32) -> FrameCtx {
        FrameCtx {
            round: 0,
            client,
            attempt,
        }
    }

    fn drain_after(link: &mut InMemoryLink, ticks: u64) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for _ in 0..ticks {
            link.tick();
            out.extend(link.poll());
        }
        out
    }

    #[test]
    fn healthy_frame_arrives_after_link_latency() {
        let mut link = InMemoryLink::new(NetPlan::zero(1));
        link.send(ctx(0, 0), vec![1, 2, 3]);
        assert!(link.poll().is_empty(), "nothing arrives at send time");
        link.tick();
        assert_eq!(link.poll(), vec![vec![1, 2, 3]]);
        assert!(link.poll().is_empty(), "poll drains");
    }

    #[test]
    fn dropped_frames_never_arrive() {
        let plan = NetPlan::new(NetConfig {
            drop: 1.0,
            ..NetConfig::zero(2)
        });
        let mut link = InMemoryLink::new(plan);
        link.send(ctx(0, 0), vec![9; 8]);
        assert!(drain_after(&mut link, 10_000).is_empty());
    }

    #[test]
    fn duplicated_frames_arrive_twice() {
        let plan = NetPlan::new(NetConfig {
            duplicate: 1.0,
            ..NetConfig::zero(3)
        });
        let mut link = InMemoryLink::new(plan);
        link.send(ctx(0, 0), vec![7]);
        link.tick();
        assert_eq!(link.poll(), vec![vec![7], vec![7]]);
    }

    #[test]
    fn corrupted_frames_differ_by_exactly_one_bit() {
        let plan = NetPlan::new(NetConfig {
            corrupt: 1.0,
            ..NetConfig::zero(4)
        });
        let sent = vec![0u8; 16];
        let mut link = InMemoryLink::new(plan);
        link.send(ctx(0, 0), sent.clone());
        link.tick();
        let got = link.poll();
        assert_eq!(got.len(), 1);
        let flipped: u32 = got[0]
            .iter()
            .zip(sent.iter())
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1);
    }

    #[test]
    fn reordered_frame_lands_behind_later_traffic() {
        let plan = NetPlan::new(NetConfig {
            reorder: 1.0,
            ..NetConfig::zero(5)
        });
        let mut link = InMemoryLink::new(plan);
        // First frame reordered (+1 tick); plan is all-reorder, so hold
        // the second frame out of the fault path with a zero-plan link…
        // instead, send both through the same link but note both reorder:
        // ids break the tie deterministically.
        link.send(ctx(0, 0), vec![1]);
        link.tick();
        link.send(ctx(1, 0), vec![2]);
        let mut got = Vec::new();
        for _ in 0..4 {
            link.tick();
            got.extend(link.poll());
        }
        // Frame 1 due at 0+1+1 = 2; frame 2 due at 1+1+1 = 3.
        assert_eq!(got, vec![vec![1], vec![2]]);
        // And a reordered frame does land behind a healthy later send:
        let plan = NetPlan::new(NetConfig {
            reorder: 0.5,
            ..NetConfig::zero(17)
        });
        // Find a (client, attempt) pair where attempt 0 reorders and
        // attempt 1 does not.
        let pair = (0..64u64).find(|&c| {
            plan.net_fault_for(0, c, 0) == Some(NetFault::Reorder)
                && plan.net_fault_for(0, c, 1).is_none()
        });
        let c = pair.expect("some client reorders on attempt 0 only");
        let mut link = InMemoryLink::new(plan);
        link.send(ctx(c, 0), vec![10]);
        link.send(ctx(c, 1), vec![11]);
        link.tick();
        assert_eq!(link.poll(), vec![vec![11]], "healthy frame overtakes");
        link.tick();
        assert_eq!(link.poll(), vec![vec![10]]);
    }

    #[test]
    fn delayed_frames_park_for_whole_rounds() {
        let plan = NetPlan::new(NetConfig {
            delay: 1.0,
            max_delay_rounds: 1,
            ..NetConfig::zero(6)
        });
        let mut link = InMemoryLink::new(plan);
        link.send(ctx(0, 0), vec![4]);
        assert!(drain_after(&mut link, ROUND_TICKS).is_empty());
        link.tick();
        assert_eq!(link.poll(), vec![vec![4]]);
    }

    #[test]
    fn flip_bit_handles_edge_cases() {
        let mut empty: Vec<u8> = Vec::new();
        flip_bit(&mut empty, 12345);
        assert!(empty.is_empty());
        let mut one = vec![0u8];
        flip_bit(&mut one, 8); // wraps to bit 0
        assert_eq!(one, vec![1]);
    }
}
