//! Canonical span, point, and metric names.
//!
//! Every `tracer.span(…)`, `tracer.point(…)`, and `MetricsRegistry`
//! key used anywhere in the workspace's library crates is declared
//! here, once. Call sites reference these constants instead of string
//! literals — `fedwcm-lint`'s `metrics-registry` rule enforces it
//! statically: a literal name at a call site, a constant that does not
//! resolve here, or a constant nothing references is a hard CI error.
//! That makes this module the single authoritative taxonomy of the
//! telemetry surface: rename a span here and the compiler walks you to
//! every producer, while dashboards and trace consumers get one place
//! to read.
//!
//! Grouping mirrors the instrument kinds in [`crate::metrics`] and
//! [`crate::tracer`]: spans and points first, then counters, gauges,
//! and histograms (all metric keys are dot-separated, `fl.`-prefixed).

// ---- spans -------------------------------------------------------------

/// Span: one federated round end to end.
pub const ROUND: &str = "round";
/// Span: one client's local training for a round.
pub const CLIENT_UPDATE: &str = "client_update";
/// Span: one local epoch inside a client update (thread-local buffer).
pub const LOCAL_EPOCH: &str = "local_epoch";
/// Span: the synchronous cadence's aggregation step.
pub const AGGREGATE: &str = "aggregate";
/// Span: one buffered-K cadence flush.
pub const BUFFER_FLUSH: &str = "buffer_flush";
/// Span: one asynchronous cadence apply.
pub const ASYNC_APPLY: &str = "async_apply";
/// Span: evaluation of the global model.
pub const EVALUATE: &str = "evaluate";
/// Span: writing a checkpoint.
pub const CHECKPOINT: &str = "checkpoint";
/// Span: the fault pipeline for one round.
pub const FAULT_INJECT: &str = "fault_inject";
/// Span: one transport delivery (send + retries) of a client upload.
pub const SEND_FRAME: &str = "send_frame";

// ---- points ------------------------------------------------------------

/// Point: one injected fault event (kind in the fields).
pub const FAULT: &str = "fault";
/// Point: a free-form informational message.
pub const INFO: &str = "info";
/// Point: one failed transport attempt (reason in the fields).
pub const RETRY: &str = "retry";
/// Point: a transport delivery acknowledged (or merged after delay).
pub const ACK: &str = "ack";

// ---- counters ----------------------------------------------------------

/// Counter: client→server payload bytes.
pub const FL_BYTES_UP: &str = "fl.bytes.up";
/// Counter: server→client payload bytes.
pub const FL_BYTES_DOWN: &str = "fl.bytes.down";
/// Counter: clients dropped for the round by the fault plan.
pub const FL_FAULTS_DROPOUTS: &str = "fl.faults.dropouts";
/// Counter: uploads delayed by straggler faults.
pub const FL_FAULTS_STRAGGLERS: &str = "fl.faults.stragglers";
/// Counter: late uploads merged into a later round.
pub const FL_FAULTS_LATE_MERGED: &str = "fl.faults.late_merged";
/// Counter: late uploads re-queued when their round skipped quorum.
pub const FL_FAULTS_LATE_REQUEUED: &str = "fl.faults.late_requeued";
/// Counter: uploads corrupted by the fault plan.
pub const FL_FAULTS_CORRUPTIONS: &str = "fl.faults.corruptions";
/// Counter: stale uploads replayed from the replay cache.
pub const FL_FAULTS_REPLAYS: &str = "fl.faults.replays";
/// Counter: uploads received before fault filtering.
pub const FL_UPDATES_RECEIVED: &str = "fl.updates.received";
/// Counter: uploads dropped by fault filtering.
pub const FL_UPDATES_DROPPED: &str = "fl.updates.dropped";
/// Counter: completed federated rounds.
pub const FL_ROUNDS: &str = "fl.rounds";
/// Counter: rounds skipped for missing quorum.
pub const FL_ROUNDS_QUORUM_FAILED: &str = "fl.rounds.quorum_failed";
/// Counter: buffered-K cadence flushes.
pub const FL_CADENCE_FLUSHES: &str = "fl.cadence.flushes";
/// Counter: asynchronous cadence applies.
pub const FL_CADENCE_ASYNC_APPLIES: &str = "fl.cadence.async_applies";
/// Counter: transport data frames transmitted (first sends + retries).
pub const FL_NET_FRAMES_SENT: &str = "fl.net.frames_sent";
/// Counter: transport re-transmissions after a Nack or timeout.
pub const FL_NET_RETRIES: &str = "fl.net.retries";
/// Counter: frames rejected by the receiver (checksum or malformed).
pub const FL_NET_REJECTED_FRAMES: &str = "fl.net.rejected_frames";
/// Counter: redundant intact frames discarded as duplicates.
pub const FL_NET_DUPLICATES: &str = "fl.net.duplicates";
/// Counter: deliveries deferred whole rounds by the network plan.
pub const FL_NET_DELAYED: &str = "fl.net.delayed";
/// Counter: deliveries that exhausted their retry budget and degraded
/// into the dropout machinery.
pub const FL_NET_DEGRADED: &str = "fl.net.degraded";
/// Counter: bytes re-transmitted by the transport.
pub const FL_NET_RETRANSMITTED_BYTES: &str = "fl.net.retransmitted_bytes";
/// Counter: bytes arriving in rejected frames.
pub const FL_NET_REJECTED_BYTES: &str = "fl.net.rejected_bytes";

// ---- gauges ------------------------------------------------------------

/// Gauge: uploads currently waiting in the aggregation buffer.
pub const FL_CADENCE_BUFFERED: &str = "fl.cadence.buffered";
/// Gauge: the momentum-calibration α chosen this aggregation.
pub const FL_ALPHA: &str = "fl.alpha";
/// Gauge: overall test accuracy of the global model.
pub const FL_ACC_OVERALL: &str = "fl.acc.overall";
/// Gauge: mean test accuracy over the tail third of classes.
pub const FL_ACC_TAIL: &str = "fl.acc.tail";
/// Gauge name prefix: per-class accuracy, suffixed with the
/// zero-padded class id (`fl.acc.class.07`).
pub const FL_ACC_CLASS_PREFIX: &str = "fl.acc.class.";

// ---- histograms --------------------------------------------------------

/// Histogram: L2 norm of the global-model movement per aggregation.
pub const FL_UPDATE_NORM: &str = "fl.update_norm";
/// Histogram: distribution of chosen α values.
pub const FL_ALPHA_TRAJECTORY: &str = "fl.alpha.trajectory";
/// Histogram: ticks spent in local training per round.
pub const FL_PHASE_LOCAL_TRAIN: &str = "fl.phase.local_train";
/// Histogram: ticks spent aggregating per round.
pub const FL_PHASE_AGGREGATE: &str = "fl.phase.aggregate";
/// Histogram: ticks spent evaluating per evaluation.
pub const FL_PHASE_EVALUATE: &str = "fl.phase.evaluate";
/// Histogram: total ticks per round.
pub const FL_ROUND_TICKS: &str = "fl.round_ticks";
