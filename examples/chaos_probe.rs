//! Chaos smoke probe for CI.
//!
//! Runs a short federated simulation under an aggressive fault plan —
//! 30% dropout, 15% stragglers, 5% corruption, 5% replay — and prints the
//! resilience report. CI runs this in release *and* with
//! `--features debug_invariants`: the latter must not panic, because
//! injected faults model transport damage applied *after* the
//! client-emission invariant boundary (see `fedwcm_fl::engine`), and the
//! containment filter absorbs the corrupted uploads before aggregation.
//!
//! Pass a file path as the first argument to additionally write a JSONL
//! trace of the run (spans + structured fault events under a
//! `LogicalClock`); CI uploads it as a build artifact.

use fedwcm_suite::faults::FaultConfig;
use fedwcm_suite::prelude::*;
use fedwcm_suite::trace::{JsonlSink, LogicalClock, Tracer};
use std::sync::Arc;

fn main() {
    let spec = DatasetPreset::Cifar10.spec();
    let counts = longtail_counts(10, 50, 0.1);
    let train = spec.generate_train(&counts, 47);
    let test = spec.generate_test(47);

    let mut cfg = FlConfig::default_sim();
    cfg.clients = 6;
    cfg.participation = 0.5;
    cfg.rounds = 8;
    cfg.local_epochs = 1;
    cfg.batch_size = 20;
    cfg.eval_every = 4;
    cfg.seed = 47;
    cfg.threads = 0; // defer to FEDWCM_THREADS

    let plan = FaultPlan::new(FaultConfig {
        dropout: 0.3,
        straggler: 0.15,
        max_delay: 3,
        corruption: 0.15,
        replay: 0.05,
        ..FaultConfig::zero(0xC405)
    });

    let views = paper_partition(&train, cfg.clients, 0.3, cfg.seed).views(&train);
    let mut sim = Simulation::new(
        cfg,
        &train,
        &test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(31);
            fedwcm_suite::nn::models::mlp(192, &[24], 10, &mut rng)
        }),
    )
    .with_fault_plan(plan);

    // Optional JSONL trace artifact: `chaos_probe <path>` stamps every
    // span and injected fault with a LogicalClock, so the file is
    // identical across thread counts and CI can diff or archive it.
    let mut tracer = Tracer::disabled();
    if let Some(path) = std::env::args().nth(1) {
        let file = std::fs::File::create(&path)
            .unwrap_or_else(|e| panic!("cannot create trace file {path}: {e}"));
        tracer = Tracer::new(
            Box::new(LogicalClock::new()),
            Arc::new(JsonlSink::new(file)),
        );
        sim = sim.with_tracer(tracer.clone());
    }

    let history = sim.run(&mut FedWcm::new());
    tracer.flush();
    println!("{}", history.resilience_report(None));
    let injected: u32 = history.records.iter().map(|r| r.faults.injected()).sum();
    let corruptions: u32 = history.records.iter().map(|r| r.faults.corruptions).sum();
    assert!(injected > 0, "chaos probe injected no faults");
    assert!(
        corruptions > 0,
        "chaos probe never exercised the corruption/containment path"
    );
    println!("chaos probe ok: {injected} faults injected, run completed");
}
