//! Sequential model over a flat parameter arena.

use crate::layer::Layer;
use crate::loss::Loss;
use fedwcm_stats::Xoshiro256pp;
use fedwcm_tensor::{invariants, Tensor};
use fedwcm_trace::prof;

/// A sequential network: layers plus one flat parameter vector.
///
/// The flat arena is the FL interface: algorithms read
/// [`Model::params`], write via [`Model::set_params`], and receive
/// gradients as one flat buffer from [`Model::backward`] /
/// [`Model::loss_grad`]. All federated arithmetic happens on these flat
/// slices with the `fedwcm-tensor::ops` kernels.
///
/// `Clone` duplicates the layer stack and parameters, which lets the
/// evaluation path hand each worker its own model replica.
#[derive(Clone)]
pub struct Model {
    layers: Vec<Box<dyn Layer>>,
    offsets: Vec<(usize, usize)>,
    params: Vec<f32>,
    in_features: usize,
    out_features: usize,
}

impl Model {
    /// Build a model from layers, validating the width chain, and
    /// initialise parameters from `rng`.
    pub fn new(layers: Vec<Box<dyn Layer>>, in_features: usize, rng: &mut Xoshiro256pp) -> Self {
        assert!(!layers.is_empty(), "model needs at least one layer");
        let mut offsets = Vec::with_capacity(layers.len());
        let mut total = 0usize;
        let mut width = in_features;
        for l in &layers {
            width = l.out_features(width);
            let len = l.param_len();
            offsets.push((total, len));
            total += len;
        }
        let mut params = vec![0.0f32; total];
        for (l, &(off, len)) in layers.iter().zip(&offsets) {
            l.init_params(&mut params[off..off + len], rng);
        }
        Model {
            layers,
            offsets,
            params,
            in_features,
            out_features: width,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count (number of classes for classifiers).
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Total parameter count.
    pub fn param_len(&self) -> usize {
        self.params.len()
    }

    /// Current parameters (flat).
    pub fn params(&self) -> &[f32] {
        &self.params
    }

    /// Mutable parameters (flat).
    pub fn params_mut(&mut self) -> &mut [f32] {
        &mut self.params
    }

    /// Overwrite all parameters.
    pub fn set_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.params.len(),
            "set_params length mismatch"
        );
        self.params.copy_from_slice(params);
    }

    /// Layer names in order (for per-layer analysis).
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Parameter range `(offset, len)` of layer `i` in the flat arena.
    pub fn layer_param_range(&self, i: usize) -> (usize, usize) {
        self.offsets[i]
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.layers.len()
    }

    /// Forward pass producing logits. `train=true` caches activations so a
    /// `backward` can follow.
    ///
    /// With the `debug_invariants` feature, the input and every layer
    /// output are checked for non-finite values and the batch dimension
    /// is verified to survive each layer; release builds skip both.
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Tensor {
        assert_eq!(input.cols(), self.in_features, "model input width mismatch");
        let batch = input.rows();
        input.debug_assert_finite(|| "model forward input".to_string());
        let mut x = input.clone();
        for (idx, (l, &(off, len))) in self.layers.iter_mut().zip(&self.offsets).enumerate() {
            // Per-layer timing behind the cheap `prof::active()` guard: a
            // single relaxed load unless a binary installed the profiler.
            if prof::active() {
                let t0 = prof::now();
                x = l.forward(&self.params[off..off + len], &x, train);
                prof::record("fwd", l.name(), prof::now().saturating_sub(t0));
            } else {
                x = l.forward(&self.params[off..off + len], &x, train);
            }
            if invariants::ENABLED {
                let name = l.name();
                x.debug_assert_finite(|| format!("forward output of layer {idx} ({name})"));
                invariants::check_len(x.rows(), batch, || {
                    format!("batch dimension after layer {idx} ({name}) in forward")
                });
            }
        }
        x
    }

    /// Forward pass that also returns every intermediate activation
    /// (post-layer outputs), used by the neuron-concentration analysis.
    pub fn forward_collect(&mut self, input: &Tensor) -> (Tensor, Vec<Tensor>) {
        let mut x = input.clone();
        let mut acts = Vec::with_capacity(self.layers.len());
        for (l, &(off, len)) in self.layers.iter_mut().zip(&self.offsets) {
            x = l.forward(&self.params[off..off + len], &x, false);
            acts.push(x.clone());
        }
        (x.clone(), acts)
    }

    /// Backward pass from a logits gradient; fills `grads` (accumulating).
    ///
    /// With the `debug_invariants` feature, the incoming logits gradient,
    /// every propagated layer gradient, and the final parameter gradient
    /// buffer are checked for non-finite values; release builds skip all
    /// of it.
    pub fn backward(&mut self, grad_logits: &Tensor, grads: &mut [f32]) {
        assert_eq!(
            grads.len(),
            self.params.len(),
            "grad buffer length mismatch"
        );
        let batch = grad_logits.rows();
        grad_logits.debug_assert_finite(|| "logits gradient entering backward".to_string());
        let mut g = grad_logits.clone();
        for (idx, (l, &(off, len))) in self.layers.iter_mut().zip(&self.offsets).enumerate().rev() {
            if prof::active() {
                let t0 = prof::now();
                g = l.backward(&self.params[off..off + len], &mut grads[off..off + len], &g);
                prof::record("bwd", l.name(), prof::now().saturating_sub(t0));
            } else {
                g = l.backward(&self.params[off..off + len], &mut grads[off..off + len], &g);
            }
            if invariants::ENABLED {
                let name = l.name();
                g.debug_assert_finite(|| format!("backward gradient out of layer {idx} ({name})"));
                invariants::check_len(g.rows(), batch, || {
                    format!("batch dimension out of layer {idx} ({name}) in backward")
                });
            }
        }
        if invariants::ENABLED {
            invariants::check_finite(grads, || "parameter gradient buffer".to_string());
        }
    }

    /// Convenience: forward + loss + backward on one mini-batch.
    /// Returns the mean loss; writes the mean gradient into `grads`
    /// (overwriting, not accumulating).
    pub fn loss_grad(
        &mut self,
        x: &Tensor,
        y: &[usize],
        loss: &dyn Loss,
        grads: &mut [f32],
    ) -> f32 {
        grads.fill(0.0);
        let logits = self.forward(x, true);
        let (l, dlogits) = loss.loss_and_grad(&logits, y);
        self.backward(&dlogits, grads);
        l
    }

    /// Accuracy on a labelled batch (argmax of logits).
    pub fn accuracy(&mut self, x: &Tensor, y: &[usize]) -> f64 {
        assert_eq!(x.rows(), y.len(), "batch/label length mismatch");
        if y.is_empty() {
            return 0.0;
        }
        let logits = self.forward(x, false);
        let mut correct = 0usize;
        for (r, &label) in y.iter().enumerate() {
            let row = logits.row(r);
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            if best == label {
                correct += 1;
            }
        }
        correct as f64 / y.len() as f64
    }

    /// Predicted class per row.
    pub fn predict(&mut self, x: &Tensor) -> Vec<usize> {
        let logits = self.forward(x, false);
        (0..logits.rows())
            .map(|r| {
                let row = logits.row(r);
                let mut best = 0usize;
                for (j, &v) in row.iter().enumerate() {
                    if v > row[best] {
                        best = j;
                    }
                }
                best
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::layer::Relu;
    use crate::loss::{CrossEntropy, Loss};

    fn tiny_model(seed: u64) -> Model {
        let mut rng = Xoshiro256pp::seed_from(seed);
        Model::new(
            vec![
                Box::new(Dense::new(4, 8)),
                Box::new(Relu::new()),
                Box::new(Dense::new(8, 3)),
            ],
            4,
            &mut rng,
        )
    }

    #[test]
    fn widths_and_param_count() {
        let m = tiny_model(1);
        assert_eq!(m.in_features(), 4);
        assert_eq!(m.out_features(), 3);
        assert_eq!(m.param_len(), (4 * 8 + 8) + (8 * 3 + 3));
        assert_eq!(m.num_layers(), 3);
        assert_eq!(m.layer_names(), vec!["dense", "relu", "dense"]);
    }

    #[test]
    fn deterministic_init() {
        let a = tiny_model(42);
        let b = tiny_model(42);
        assert_eq!(a.params(), b.params());
        let c = tiny_model(43);
        assert_ne!(a.params(), c.params());
    }

    #[test]
    fn set_params_roundtrip() {
        let mut m = tiny_model(1);
        let new: Vec<f32> = (0..m.param_len()).map(|i| i as f32 * 0.01).collect();
        m.set_params(&new);
        assert_eq!(m.params(), new.as_slice());
    }

    #[test]
    fn forward_collect_layer_count() {
        let mut m = tiny_model(1);
        let x = Tensor::zeros(&[2, 4]);
        let (logits, acts) = m.forward_collect(&x);
        assert_eq!(acts.len(), 3);
        assert_eq!(logits.shape(), &[2, 3]);
        assert_eq!(acts[0].shape(), &[2, 8]);
    }

    #[test]
    fn training_reduces_loss_on_separable_data() {
        let mut m = tiny_model(7);
        // Three clusters along different axes.
        let x = Tensor::from_vec(
            vec![
                3.0, 0.0, 0.0, 0.0, //
                0.0, 3.0, 0.0, 0.0, //
                0.0, 0.0, 3.0, 0.0,
            ],
            &[3, 4],
        );
        let y = [0usize, 1, 2];
        let loss = CrossEntropy;
        let mut grads = vec![0.0; m.param_len()];
        let initial = m.loss_grad(&x, &y, &loss, &mut grads);
        for _ in 0..200 {
            let _ = m.loss_grad(&x, &y, &loss, &mut grads);
            let params = m.params_mut();
            for (p, g) in params.iter_mut().zip(&grads) {
                *p -= 0.5 * g;
            }
        }
        let after = m.loss_grad(&x, &y, &loss, &mut grads);
        assert!(after < initial * 0.1, "loss {initial} -> {after}");
        assert_eq!(m.accuracy(&x, &y), 1.0);
        assert_eq!(m.predict(&x), vec![0, 1, 2]);
    }

    #[test]
    fn model_gradient_matches_finite_difference() {
        let mut m = tiny_model(9);
        let x = Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 1.0, 1.0, -0.5, 0.3], &[2, 4]);
        let y = [2usize, 0];
        let loss = CrossEntropy;
        let mut grads = vec![0.0; m.param_len()];
        let _ = m.loss_grad(&x, &y, &loss, &mut grads);
        let eps = 1e-3;
        let base_params = m.params().to_vec();
        for i in (0..base_params.len()).step_by(7) {
            let mut p = base_params.clone();
            p[i] += eps;
            m.set_params(&p);
            let up = {
                let logits = m.forward(&x, false);
                loss.loss_and_grad(&logits, &y).0
            };
            p[i] -= 2.0 * eps;
            m.set_params(&p);
            let down = {
                let logits = m.forward(&x, false);
                loss.loss_and_grad(&logits, &y).0
            };
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grads[i]).abs() < 1e-2,
                "param {i}: fd {fd} vs {}",
                grads[i]
            );
            m.set_params(&base_params);
        }
    }
}
