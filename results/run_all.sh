#!/bin/sh
# Regenerates every paper artifact at quick scale (CPU-budgeted).
# Usage: sh results/run_all.sh [extra flags passed to every binary]
set -x
cd "$(dirname "$0")/.."
R=results
run() { bin=$1; shift; cargo run --release -q -p fedwcm-experiments --bin "$bin" -- "$@" > "$R/$bin.txt" 2>"$R/$bin.log"; }

run fig2_partition
run fig11_skew
run table6_he_sizes
run thm61_rate
run fig3_motivation --rounds 80
run fig7_convergence --rounds 80
run fig8_per_label --rounds 80
run table4_beta_if --rounds 60
run table3_sampling --rounds 60
run fig9_clients --rounds 60
run fig10_epochs --rounds 60
run table5_fedwcm_x --rounds 60
run fig12_fedgrab_part --rounds 60
run ablation_fedwcm --rounds 60
run fig13_concentration_cmp --rounds 60
run fig14_16_layers --rounds 60
run fig17_collapse --rounds 60
run fig4_concentration --rounds 60
run fig18_19_hetero --rounds 60
run table2_cifar10 --rounds 60
run appendix_geometry --rounds 60
run table1_overall --rounds 60 --dataset cifar-10
run table1_overall --rounds 40 --dataset fashion-mnist
echo ALL_DONE
