//! FedAvg (McMahan et al., 2017): local SGD + model averaging.

use fedwcm_fl::algorithm::{
    server_step, uniform_average, FederatedAlgorithm, RoundInput, RoundLog, StateError,
};
use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_nn::loss::{CrossEntropy, Loss};
use std::sync::Arc;

/// Plain federated averaging. With the engine's delta convention and
/// `η_g = 1`, one aggregation step is exactly the average of the sampled
/// clients' final local models.
pub struct FedAvg {
    loss: Arc<dyn Loss>,
}

impl FedAvg {
    /// FedAvg with cross-entropy.
    pub fn new() -> Self {
        FedAvg {
            loss: Arc::new(CrossEntropy),
        }
    }

    /// FedAvg with a custom loss.
    pub fn with_loss(loss: Arc<dyn Loss>) -> Self {
        FedAvg { loss }
    }
}

impl Default for FedAvg {
    fn default() -> Self {
        Self::new()
    }
}

impl FederatedAlgorithm for FedAvg {
    fn name(&self) -> String {
        "FedAvg".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: self.loss.as_ref(),
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        run_local_sgd(env, global, &spec, |_, _, _| {})
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        let mut dir = vec![0.0f32; global.len()];
        uniform_average(&input.updates, &mut dir);
        server_step(global, &dir, input.cfg, input.mean_batches());
        RoundLog::default()
    }

    // FedAvg carries no cross-round state; an empty blob is the whole of it.
    fn save_state(&self) -> Option<Vec<u8>> {
        Some(Vec::new())
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(StateError::Malformed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{build_sim, small_task};

    #[test]
    fn learns_balanced_task() {
        let (train, test, cfg) = small_task(31, 1.0);
        let sim = build_sim(&train, &test, cfg, 0.6);
        let mut algo = FedAvg::new();
        let h = sim.run(&mut algo);
        assert!(h.final_accuracy(1) > 0.55, "acc {}", h.final_accuracy(1));
    }

    #[test]
    fn stable_under_longtail() {
        // FedAvg degrades but does not collapse under IF=0.1 (the paper's
        // "stable baseline" role).
        let (train, test, cfg) = small_task(32, 0.1);
        let sim = build_sim(&train, &test, cfg, 0.6);
        let h = sim.run(&mut FedAvg::new());
        assert!(h.final_accuracy(1) > 0.3, "acc {}", h.final_accuracy(1));
    }
}
