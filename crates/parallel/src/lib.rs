//! Deterministic data-parallel utilities on scoped threads.
//!
//! The FL engine trains the clients sampled in a round concurrently; each
//! client's work is independent (own RNG stream, own model copy), so the
//! natural shape is an indexed parallel map whose results are collected
//! **in index order** — making the subsequent server aggregation bitwise
//! deterministic regardless of thread count or scheduling.
//!
//! Built on `std::thread::scope` (no unsafe, no external runtime). When the
//! machine exposes a single core — or `FEDWCM_THREADS=1` — everything runs
//! inline on the caller thread, which also keeps stack traces simple.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Resolve the worker count: the `FEDWCM_THREADS` env var if set (≥1),
/// otherwise [`std::thread::available_parallelism`].
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("FEDWCM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
}

/// Apply `f` to every index in `0..n`, producing a `Vec` ordered by index.
///
/// Work is distributed dynamically (atomic work-stealing counter), so
/// heterogeneous per-item costs — e.g. clients with different data volumes
/// in FedWCM-X — balance automatically. `f` must be `Sync` because multiple
/// worker threads share it.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    // Hand each worker a disjoint set of result slots through a mutex-free
    // scheme: workers claim indices from the shared counter and write into
    // a locked vector of options. The lock is held only for the write.
    let results = Mutex::new(&mut slots);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let value = f(i);
                let mut guard = results.lock().expect("worker panicked while writing results");
                guard[i] = Some(value);
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("parallel_map slot left empty"))
        .collect()
}

/// Map then fold in **index order**: `fold(init, map(0), map(1), …)`.
///
/// The maps run in parallel; the fold runs on the caller thread over the
/// index-ordered results, so floating-point reductions are reproducible.
pub fn parallel_map_reduce<T, A, F, G>(n: usize, threads: usize, map: F, init: A, fold: G) -> A
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    G: FnMut(A, T) -> A,
{
    parallel_map(n, threads, map).into_iter().fold(init, fold)
}

/// Split `0..n` into at most `parts` contiguous chunks of near-equal size.
/// Returns `(start, end)` pairs; never returns empty chunks.
pub fn chunk_ranges(n: usize, parts: usize) -> Vec<(usize, usize)> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.max(1).min(n);
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Parallel elementwise accumulation: `acc[i] += weight * parts[k][i]`
/// summed over `k` in index order within each disjoint range.
///
/// The output vector is chunked across threads; every thread owns a
/// disjoint slice, so there is no contention, and within a chunk the
/// addition order over `k` is fixed — deterministic result.
pub fn weighted_sum_into(acc: &mut [f32], parts: &[(&[f32], f32)], threads: usize) {
    for (p, _) in parts {
        assert_eq!(p.len(), acc.len(), "weighted_sum_into length mismatch");
    }
    let n = acc.len();
    let threads = threads.max(1);
    if threads == 1 || n < 1 << 14 || parts.is_empty() {
        for &(p, w) in parts {
            for (a, x) in acc.iter_mut().zip(p) {
                *a += w * x;
            }
        }
        return;
    }
    let ranges = chunk_ranges(n, threads);
    // Split `acc` into disjoint mutable chunks matching `ranges`.
    let mut chunks: Vec<&mut [f32]> = Vec::with_capacity(ranges.len());
    let mut rest = acc;
    let mut offset = 0;
    for &(start, end) in &ranges {
        let (head, tail) = rest.split_at_mut(end - start);
        debug_assert_eq!(offset, start);
        offset = end;
        chunks.push(head);
        rest = tail;
    }
    std::thread::scope(|scope| {
        for (chunk, &(start, end)) in chunks.into_iter().zip(&ranges) {
            scope.spawn(move || {
                for &(p, w) in parts {
                    let src = &p[start..end];
                    for (a, x) in chunk.iter_mut().zip(src) {
                        *a += w * x;
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        for threads in [1, 2, 4, 8] {
            let out = parallel_map(100, threads, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_empty_and_single() {
        assert_eq!(parallel_map(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(parallel_map(1, 4, |i| i + 7), vec![7]);
    }

    #[test]
    fn map_reduce_deterministic_fp() {
        // Floating-point fold must be identical across thread counts.
        let gold = parallel_map_reduce(1000, 1, |i| (i as f32).sqrt() * 0.1, 0.0f32, |a, x| a + x);
        for threads in [2, 3, 8] {
            let v =
                parallel_map_reduce(1000, threads, |i| (i as f32).sqrt() * 0.1, 0.0f32, |a, x| a + x);
            assert_eq!(v.to_bits(), gold.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 17, 100] {
            for parts in [1usize, 2, 3, 7, 200] {
                let ranges = chunk_ranges(n, parts);
                let total: usize = ranges.iter().map(|(s, e)| e - s).sum();
                assert_eq!(total, n, "n={n} parts={parts}");
                // Contiguous and non-empty.
                let mut prev = 0;
                for &(s, e) in &ranges {
                    assert_eq!(s, prev);
                    assert!(e > s);
                    prev = e;
                }
                // Balanced within 1.
                if !ranges.is_empty() {
                    let sizes: Vec<usize> = ranges.iter().map(|(s, e)| e - s).collect();
                    let min = sizes.iter().min().unwrap();
                    let max = sizes.iter().max().unwrap();
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    fn weighted_sum_matches_sequential() {
        let n = 40_000;
        let p1: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
        let p2: Vec<f32> = (0..n).map(|i| (i as f32).cos()).collect();
        // Reference: same part-by-part accumulation order the kernel defines.
        let mut gold = vec![0.5f32; n];
        for (a, x) in gold.iter_mut().zip(&p1) {
            *a += 0.3 * x;
        }
        for (a, y) in gold.iter_mut().zip(&p2) {
            *a += 0.7 * y;
        }
        for threads in [1, 2, 4] {
            let mut acc = vec![0.5f32; n];
            weighted_sum_into(&mut acc, &[(&p1, 0.3), (&p2, 0.7)], threads);
            for (a, g) in acc.iter().zip(&gold) {
                assert_eq!(a.to_bits(), g.to_bits(), "threads={threads}");
            }
        }
    }

    #[test]
    fn weighted_sum_empty_parts_is_noop() {
        let mut acc = vec![1.0f32; 10];
        weighted_sum_into(&mut acc, &[], 4);
        assert!(acc.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn dynamic_scheduling_handles_skewed_costs() {
        // Items with wildly different costs still produce ordered output.
        let out = parallel_map(50, 4, |i| {
            if i % 10 == 0 {
                // Simulate a heavy client.
                let mut acc = 0u64;
                for k in 0..200_000u64 {
                    acc = acc.wrapping_add(k.wrapping_mul(k));
                }
                (i, acc & 1)
            } else {
                (i, 0)
            }
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx, *i);
        }
    }

    #[test]
    fn default_threads_at_least_one() {
        assert!(default_threads() >= 1);
    }
}
