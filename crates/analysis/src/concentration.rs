//! The neuron-concentration metric (Figs. 4, 13–17).
//!
//! Definition (DESIGN.md §2): feed an evaluation set through the model
//! and, for each hidden neuron `n`, compute the mean *magnitude* of its
//! activation per class, `a_{n,c} ≥ 0`. The neuron's concentration is the
//! share of its activation mass captured by its dominant class,
//! `max_c a_{n,c} / Σ_c a_{n,c}` ∈ [1/C, 1]. A layer's concentration is
//! the mean over its (active) neurons; the model's is the mean over
//! layers. Under minority collapse the majority classes monopolise the
//! representation and the metric spikes towards 1 — the signature the
//! paper reports for FedCM under long tails.

use fedwcm_data::dataset::Dataset;
use fedwcm_nn::model::Model;

/// Per-layer and aggregate concentration of one model snapshot.
#[derive(Clone, Debug)]
pub struct ConcentrationReport {
    /// `(layer name, concentration)` for each layer with ≥ 1 active
    /// neuron, in network order.
    pub per_layer: Vec<(String, f64)>,
    /// Mean over the reported layers.
    pub mean: f64,
}

/// Compute per-layer neuron concentrations on (a subset of) the dataset.
///
/// `max_samples` caps the evaluation cost; samples are taken from the
/// front of the dataset (synthetic sets are shuffled at generation).
pub fn layer_concentrations(
    model: &mut Model,
    dataset: &Dataset,
    max_samples: usize,
) -> ConcentrationReport {
    assert!(!dataset.is_empty(), "empty dataset");
    assert!(
        max_samples >= dataset.classes(),
        "need at least one sample per class on average"
    );
    let n = dataset.len().min(max_samples);
    let idx: Vec<usize> = (0..n).collect();
    let (x, y) = dataset.gather(&idx);
    let classes = dataset.classes();
    let names = model.layer_names();
    let (_, acts) = model.forward_collect(&x);

    let mut per_layer = Vec::new();
    for (layer_idx, act) in acts.iter().enumerate() {
        let neurons = act.cols();
        // Mean |activation| per (neuron, class).
        let mut sums = vec![0.0f64; neurons * classes];
        let mut counts = vec![0usize; classes];
        for (r, &label) in y.iter().enumerate() {
            counts[label] += 1;
            let row = act.row(r);
            let base = &mut sums[..];
            for (j, &v) in row.iter().enumerate() {
                base[j * classes + label] += v.abs() as f64;
            }
        }
        let mut conc_sum = 0.0f64;
        let mut active = 0usize;
        for j in 0..neurons {
            let mut total = 0.0f64;
            let mut max = 0.0f64;
            for c in 0..classes {
                let mean = if counts[c] > 0 {
                    sums[j * classes + c] / counts[c] as f64
                } else {
                    0.0
                };
                total += mean;
                if mean > max {
                    max = mean;
                }
            }
            if total > 1e-12 {
                conc_sum += max / total;
                active += 1;
            }
        }
        if active > 0 {
            per_layer.push((names[layer_idx].to_string(), conc_sum / active as f64));
        }
    }
    let mean = if per_layer.is_empty() {
        0.0
    } else {
        per_layer.iter().map(|(_, c)| c).sum::<f64>() / per_layer.len() as f64
    };
    ConcentrationReport { per_layer, mean }
}

/// Convenience: just the mean concentration.
pub fn mean_concentration(model: &mut Model, dataset: &Dataset, max_samples: usize) -> f64 {
    layer_concentrations(model, dataset, max_samples).mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_data::synth::DatasetPreset;
    use fedwcm_nn::dense::Dense;
    use fedwcm_nn::layer::Relu;
    use fedwcm_nn::models::mlp;
    use fedwcm_stats::Xoshiro256pp;
    use fedwcm_tensor::Tensor;

    #[test]
    fn bounds_hold() {
        let spec = DatasetPreset::FashionMnist.spec();
        let test = spec.generate_test(201);
        let mut rng = Xoshiro256pp::seed_from(1);
        let mut model = mlp(64, &[32, 16], 10, &mut rng);
        let report = layer_concentrations(&mut model, &test, 300);
        assert!(!report.per_layer.is_empty());
        for (name, c) in &report.per_layer {
            assert!(
                (0.1 - 1e-9..=1.0).contains(c),
                "layer {name} concentration {c} out of [1/C, 1]"
            );
        }
        assert!(report.mean > 0.0 && report.mean <= 1.0);
    }

    #[test]
    fn random_model_near_uniform_concentration() {
        // A random model's neurons should not be class-specialised: the
        // concentration stays near 1/C (well below 0.5 for C = 10).
        let spec = DatasetPreset::FashionMnist.spec();
        let test = spec.generate_test(202);
        let mut rng = Xoshiro256pp::seed_from(2);
        let mut model = mlp(64, &[32], 10, &mut rng);
        let mean = mean_concentration(&mut model, &test, 400);
        assert!(mean < 0.4, "random model concentration {mean}");
    }

    #[test]
    fn collapsed_model_high_concentration() {
        // Hand-build a network whose single hidden neuron fires only for
        // one input direction ⇒ dominated by whichever class owns it.
        let mut rng = Xoshiro256pp::seed_from(3);
        let mut model = fedwcm_nn::model::Model::new(
            vec![
                Box::new(Dense::new(2, 2)),
                Box::new(Relu::new()),
                Box::new(Dense::new(2, 2)),
            ],
            2,
            &mut rng,
        );
        // Hidden unit 0 fires on feature 0 only; unit 1 on feature 1 only.
        let params: Vec<f32> = vec![
            5.0, 0.0, // w row 0
            0.0, 5.0, // w row 1
            0.0, 0.0, // biases
            1.0, 0.0, 0.0, 1.0, 0.0, 0.0, // classifier (unused here)
        ];
        model.set_params(&params);
        // Class 0 = e0 inputs, class 1 = e1 inputs.
        let mut xv = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            if i % 2 == 0 {
                xv.extend_from_slice(&[1.0, 0.0]);
                labels.push(0);
            } else {
                xv.extend_from_slice(&[0.0, 1.0]);
                labels.push(1);
            }
        }
        let ds = Dataset::new(Tensor::from_vec(xv, &[20, 2]), labels, 2);
        let report = layer_concentrations(&mut model, &ds, 20);
        // ReLU layer: each neuron belongs entirely to one class.
        let relu_conc = report
            .per_layer
            .iter()
            .find(|(n, _)| n == "relu")
            .map(|(_, c)| *c)
            .expect("relu layer reported");
        assert!(
            relu_conc > 0.99,
            "perfectly specialised neurons: {relu_conc}"
        );
    }

    #[test]
    fn trained_model_concentration_exceeds_random() {
        // Training class-specialises neurons ⇒ concentration rises.
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = vec![60usize; 10];
        let train = spec.generate_train(&counts, 203);
        let test = spec.generate_test(203);
        let mut rng = Xoshiro256pp::seed_from(4);
        let mut model = mlp(64, &[32], 10, &mut rng);
        let before = mean_concentration(&mut model, &test, 400);
        let (x, y) = train.as_batch();
        let loss = fedwcm_nn::loss::CrossEntropy;
        let mut grads = vec![0.0f32; model.param_len()];
        for _ in 0..80 {
            let _ = model.loss_grad(&x, &y, &loss, &mut grads);
            fedwcm_nn::opt::sgd_step(model.params_mut(), &grads, 0.1);
        }
        let after = mean_concentration(&mut model, &test, 400);
        assert!(after > before, "concentration {before} -> {after}");
    }
}
