//! Property-based tests for the FL engine: aggregation algebra,
//! convention invariants, and fault-plan determinism under arbitrary
//! inputs.

use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::partition::paper_partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_faults::{FaultConfig, FaultPlan};
use fedwcm_fl::algorithm::{server_step, uniform_average, weighted_average};
use fedwcm_fl::client::ClientUpdate;
use fedwcm_fl::quadratic::{run_quadratic_fedcm, QuadRunConfig, QuadraticProblem};
use fedwcm_fl::{FlConfig, Simulation};
use fedwcm_nn::models::mlp;
use fedwcm_stats::Xoshiro256pp;
use proptest::prelude::*;

fn updates(deltas: Vec<Vec<f32>>) -> Vec<ClientUpdate> {
    deltas
        .into_iter()
        .enumerate()
        .map(|(k, delta)| ClientUpdate {
            client: k,
            delta,
            num_samples: 10,
            num_batches: 5,
            avg_loss: 1.0,
            extra: None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn uniform_average_bounded_by_extremes(
        n in 1usize..8, dim in 1usize..20, seed in any::<u64>(),
    ) {
        let deltas: Vec<Vec<f32>> = (0..n)
            .map(|k| (0..dim).map(|i| ((seed as usize + k * 31 + i) as f32).sin()).collect())
            .collect();
        let ups = updates(deltas.clone());
        let mut avg = vec![0.0f32; dim];
        uniform_average(&ups, &mut avg);
        for i in 0..dim {
            let min = deltas.iter().map(|d| d[i]).fold(f32::INFINITY, f32::min);
            let max = deltas.iter().map(|d| d[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(avg[i] >= min - 1e-5 && avg[i] <= max + 1e-5);
        }
    }

    #[test]
    fn weighted_average_convexity(
        n in 2usize..6, dim in 1usize..15, seed in any::<u64>(),
        raw_w in prop::collection::vec(0.01f64..1.0, 2..6),
    ) {
        prop_assume!(raw_w.len() >= n);
        let total: f64 = raw_w[..n].iter().sum();
        let w: Vec<f64> = raw_w[..n].iter().map(|x| x / total).collect();
        let deltas: Vec<Vec<f32>> = (0..n)
            .map(|k| (0..dim).map(|i| ((seed as usize + k * 17 + i * 3) as f32).cos()).collect())
            .collect();
        let ups = updates(deltas.clone());
        let mut out = vec![0.0f32; dim];
        weighted_average(&ups, &w, &mut out);
        for i in 0..dim {
            let min = deltas.iter().map(|d| d[i]).fold(f32::INFINITY, f32::min);
            let max = deltas.iter().map(|d| d[i]).fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out[i] >= min - 1e-4 && out[i] <= max + 1e-4);
        }
    }

    #[test]
    fn server_step_linear_in_lr(dim in 1usize..20, lr in 0.01f32..2.0, seed in any::<u64>()) {
        let dir: Vec<f32> = (0..dim).map(|i| ((seed as usize + i) as f32).sin()).collect();
        let base: Vec<f32> = (0..dim).map(|i| (i as f32) * 0.1).collect();
        let mut cfg = FlConfig::default_sim();
        cfg.global_lr = lr;
        cfg.local_lr = 0.1;
        let mut g1 = base.clone();
        server_step(&mut g1, &dir, &cfg, 4.0);
        cfg.global_lr = 2.0 * lr;
        let mut g2 = base.clone();
        server_step(&mut g2, &dir, &cfg, 4.0);
        // Displacement doubles with the global lr.
        for i in 0..dim {
            let d1 = g1[i] - base[i];
            let d2 = g2[i] - base[i];
            prop_assert!((d2 - 2.0 * d1).abs() < 1e-4);
        }
    }

    #[test]
    fn quadratic_testbed_bounded_iterates(
        clients in 2usize..6, dim in 2usize..8, alpha in 0.1f64..1.0, seed in any::<u64>(),
    ) {
        let p = QuadraticProblem::random(clients, dim, 1.0, 0.2, seed);
        let cfg = QuadRunConfig { local_steps: 3, rounds: 30, local_lr: 0.05, alpha, seed };
        let norms = run_quadratic_fedcm(&p, &cfg);
        prop_assert_eq!(norms.len(), 30);
        prop_assert!(norms.iter().all(|v| v.is_finite()));
        // Stable configuration: the trailing average must not exceed the
        // leading average (no divergence).
        let head: f64 = norms[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = norms[25..].iter().sum::<f64>() / 5.0;
        prop_assert!(tail <= head * 2.0 + 1.0, "head {head} tail {tail}");
    }
}

fn plan_from(seed: u64, dropout: f64, straggler: f64, corruption: f64, replay: f64) -> FaultPlan {
    FaultPlan::new(FaultConfig {
        seed,
        dropout,
        straggler,
        max_delay: 3,
        corruption,
        replay,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A fault plan is a pure function: the schedule for any round is the
    /// same however and whenever it is queried, and the batch
    /// [`FaultPlan::schedule`] agrees element-wise with per-client
    /// [`FaultPlan::fault_for`] calls.
    #[test]
    fn fault_schedule_is_pure_and_consistent(
        seed in any::<u64>(),
        dropout in 0.0f64..0.35, straggler in 0.0f64..0.3,
        corruption in 0.0f64..0.2, replay in 0.0f64..0.1,
        round in 0usize..200, clients in 1usize..40,
    ) {
        let plan = plan_from(seed, dropout, straggler, corruption, replay);
        let ids: Vec<usize> = (0..clients).collect();
        let batch = plan.schedule(round, &ids);
        let singles: Vec<_> = ids
            .iter()
            .filter_map(|&c| plan.fault_for(round, c).map(|f| (c, f)))
            .collect();
        prop_assert_eq!(&batch, &singles, "batch vs per-client queries");
        prop_assert_eq!(&batch, &plan.schedule(round, &ids), "repeat query");
        // And a clone built from the same config agrees too.
        let again = plan_from(seed, dropout, straggler, corruption, replay);
        prop_assert_eq!(&batch, &again.schedule(round, &ids));
    }
}

/// Shared tiny federated task for the (expensive) end-to-end properties.
fn tiny_sim<'a>(
    train: &'a fedwcm_data::Dataset,
    test: &'a fedwcm_data::Dataset,
    threads: usize,
) -> Simulation<'a> {
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 4;
    cfg.participation = 0.5;
    cfg.rounds = 3;
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    cfg.eval_every = 3;
    cfg.seed = 55;
    cfg.threads = threads;
    let views = paper_partition(train, cfg.clients, 0.5, cfg.seed).views(train);
    Simulation::new(
        cfg,
        train,
        test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(808);
            mlp(64, &[16], 10, &mut rng)
        }),
    )
}

fn tiny_data() -> (fedwcm_data::Dataset, fedwcm_data::Dataset) {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 40, 0.5);
    (spec.generate_train(&counts, 91), spec.generate_test(91))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any fault plan yields a bitwise-identical `History` at 1 and 4
    /// worker threads (the per-thread-count determinism the engine
    /// guarantees extends to the fault hook).
    #[test]
    fn faulted_history_identical_across_thread_counts(
        seed in any::<u64>(),
        dropout in 0.0f64..0.35, straggler in 0.0f64..0.3, corruption in 0.0f64..0.15,
    ) {
        let (train, test) = tiny_data();
        let mut runs = Vec::new();
        for threads in [1usize, 4] {
            let sim = tiny_sim(&train, &test, threads)
                .with_fault_plan(plan_from(seed, dropout, straggler, corruption, 0.0));
            let mut algo = fedwcm_algos_stub::StubAvg;
            runs.push(sim.run(&mut algo));
        }
        let (a, b) = (&runs[0], &runs[1]);
        prop_assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            prop_assert_eq!(x.train_loss.map(f64::to_bits), y.train_loss.map(f64::to_bits));
            prop_assert_eq!(x.update_norm.to_bits(), y.update_norm.to_bits());
            prop_assert_eq!(x.test_acc.map(f64::to_bits), y.test_acc.map(f64::to_bits));
            prop_assert_eq!(x.faults, y.faults);
        }
    }

    /// The all-zero-rate plan is byte-identical to no plan at all: the
    /// serialized end-of-run server checkpoints match byte for byte.
    #[test]
    fn zero_rate_plan_checkpoint_bytes_match_no_plan(plan_seed in any::<u64>()) {
        let (train, test) = tiny_data();
        let without = tiny_sim(&train, &test, 1)
            .run_until(&mut fedwcm_algos_stub::StubAvg, 3)
            .expect("capture")
            .to_bytes();
        let with_zero = tiny_sim(&train, &test, 1)
            .with_fault_plan(FaultPlan::zero(plan_seed))
            .run_until(&mut fedwcm_algos_stub::StubAvg, 3)
            .expect("capture")
            .to_bytes();
        prop_assert_eq!(without, with_zero);
    }
}

/// Minimal FedAvg used by the engine-level properties (the real one lives
/// in `fedwcm-algos`, which `fedwcm-fl` cannot depend on).
mod fedwcm_algos_stub {
    use fedwcm_fl::algorithm::{
        server_step, state_from_vec, state_to_vec, uniform_average, FederatedAlgorithm, RoundInput,
        RoundLog, StateError,
    };
    use fedwcm_fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
    use fedwcm_nn::loss::CrossEntropy;

    pub struct StubAvg;

    impl FederatedAlgorithm for StubAvg {
        fn name(&self) -> String {
            "stub-avg".into()
        }

        fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
            let spec = LocalSgdSpec {
                loss: &CrossEntropy,
                balanced_sampler: false,
                lr: env.cfg.local_lr,
                epochs: env.cfg.local_epochs,
            };
            run_local_sgd(env, global, &spec, |_, _, _| {})
        }

        fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
            let mut dir = vec![0.0f32; global.len()];
            uniform_average(&input.updates, &mut dir);
            server_step(global, &dir, input.cfg, input.mean_batches());
            RoundLog::default()
        }

        fn save_state(&self) -> Option<Vec<u8>> {
            Some(state_from_vec(&[]))
        }

        fn load_state(&mut self, bytes: &[u8]) -> Result<(), StateError> {
            state_to_vec(bytes)?;
            Ok(())
        }
    }
}
