//! The analyzer's typed error: every failure names the JSONL line (or
//! document) it occurred on, so a corrupt trace is diagnosable without
//! a debugger.

use std::fmt;

/// Why trace analysis failed. The parser is strict by design: a trace
/// that does not round-trip byte-for-byte is evidence of corruption or
/// encoder drift, and silently skipping lines would hide exactly the
/// kind of regression this crate exists to catch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObsError {
    /// A line is not well-formed JSON.
    Json {
        /// 1-based JSONL line number (1 for standalone documents).
        line: usize,
        /// Byte offset of the failure within the line.
        offset: usize,
        /// What went wrong.
        msg: String,
    },
    /// A line parses as JSON but violates the trace-record shape
    /// (`t`/`ev`/`name` header, scalar field values).
    Record {
        /// 1-based JSONL line number.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// The record stream violates span structure: mismatched or
    /// unclosed spans, or a non-monotone clock.
    Structure {
        /// 1-based JSONL line number of the offending record (one
        /// record per line), or the last line for end-of-stream errors.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A profile, diff, or budget document violates its schema.
    Schema {
        /// What went wrong.
        msg: String,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Json { line, offset, msg } => {
                write!(f, "line {line}, byte {offset}: invalid JSON: {msg}")
            }
            ObsError::Record { line, msg } => {
                write!(f, "line {line}: invalid trace record: {msg}")
            }
            ObsError::Structure { line, msg } => {
                write!(f, "line {line}: invalid span structure: {msg}")
            }
            ObsError::Schema { msg } => write!(f, "invalid document: {msg}"),
        }
    }
}

impl std::error::Error for ObsError {}

impl ObsError {
    /// Build a [`ObsError::Schema`] from anything displayable.
    pub fn schema(msg: impl Into<String>) -> Self {
        ObsError::Schema { msg: msg.into() }
    }
}
