//! The dense row-major [`Tensor`] type.

use fedwcm_stats::dist::Normal;
use fedwcm_stats::rng::Rng;

/// A dense, row-major f32 tensor of arbitrary rank.
///
/// Rank-2 tensors `[rows, cols]` are the workhorse (mini-batches of
/// features, weight matrices); rank-4 `[n, c, h, w]` appears in the conv
/// path. The data is one contiguous `Vec<f32>`.
#[derive(Clone, Debug, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Tensor {
    /// Zero-filled tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor {
            data: vec![0.0; len],
            shape: shape.to_vec(),
        }
    }

    /// Tensor filled with a constant.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Tensor {
            data: vec![value; len],
            shape: shape.to_vec(),
        }
    }

    /// Wrap an existing buffer. Panics if `data.len()` mismatches `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            len,
            "buffer length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    /// Gaussian-initialised tensor `N(0, std²)` — weight initialisation.
    pub fn randn<R: Rng>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let mut t = Tensor::zeros(shape);
        let mut normal = Normal::new(0.0, std as f64);
        normal.fill_f32(rng, &mut t.data);
        t
    }

    /// Shape as a slice.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor has zero elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rank (number of axes).
    #[inline]
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Rows of a rank-2 tensor.
    #[inline]
    pub fn rows(&self) -> usize {
        assert_eq!(
            self.rank(),
            2,
            "rows() requires rank 2, got {:?}",
            self.shape
        );
        self.shape[0]
    }

    /// Columns of a rank-2 tensor.
    #[inline]
    pub fn cols(&self) -> usize {
        assert_eq!(
            self.rank(),
            2,
            "cols() requires rank 2, got {:?}",
            self.shape
        );
        self.shape[1]
    }

    /// Immutable view of the underlying buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume into the underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Assert every element is finite — but only in `debug_invariants`
    /// builds; release builds compile this to nothing. `ctx` names the
    /// tensor in the panic message and is evaluated only on failure.
    #[inline]
    pub fn debug_assert_finite(&self, ctx: impl FnOnce() -> String) {
        crate::invariants::check_finite(&self.data, ctx);
    }

    /// Row `r` of a rank-2 tensor as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        let c = self.cols();
        &self.data[r * c..(r + 1) * c]
    }

    /// Mutable row `r` of a rank-2 tensor.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let c = self.cols();
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Element accessor for rank-2 tensors.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Mutable element accessor for rank-2 tensors.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        debug_assert_eq!(self.rank(), 2);
        &mut self.data[r * self.shape[1] + c]
    }

    /// Reinterpret with a new shape of equal element count (no copy).
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let len: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            len,
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
        self
    }

    /// Transpose of a rank-2 tensor (copies).
    pub fn transpose(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = Tensor::zeros(&[c, r]);
        // Blocked transpose for cache friendliness on large matrices.
        const B: usize = 32;
        for i0 in (0..r).step_by(B) {
            for j0 in (0..c).step_by(B) {
                for i in i0..(i0 + B).min(r) {
                    for j in j0..(j0 + B).min(c) {
                        out.data[j * r + i] = self.data[i * c + j];
                    }
                }
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Squared L2 norm.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.norm_sq().sqrt()
    }

    /// Maximum absolute difference to another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_stats::rng::Xoshiro256pp;

    #[test]
    fn zeros_and_shape() {
        let t = Tensor::zeros(&[3, 4]);
        assert_eq!(t.shape(), &[3, 4]);
        assert_eq!(t.len(), 12);
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 4);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.at(0, 1), 2.0);
        assert_eq!(t.at(1, 0), 3.0);
        assert_eq!(t.into_vec(), vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    #[should_panic]
    fn from_vec_shape_mismatch_panics() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 2]);
    }

    #[test]
    fn rows_and_mutation() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.row_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(t.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(t.row(1), &[1.0, 2.0, 3.0]);
        *t.at_mut(0, 2) = 9.0;
        assert_eq!(t.at(0, 2), 9.0);
    }

    #[test]
    fn transpose_correct() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let tt = t.transpose();
        assert_eq!(tt.shape(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.at(i, j), tt.at(j, i));
            }
        }
    }

    #[test]
    fn transpose_involution_large() {
        let mut rng = Xoshiro256pp::seed_from(1);
        let t = Tensor::randn(&[67, 45], 1.0, &mut rng);
        assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 4]);
        let r = t.clone().reshape(&[2, 6]);
        assert_eq!(r.as_slice(), t.as_slice());
        assert_eq!(r.shape(), &[2, 6]);
    }

    #[test]
    fn randn_moments() {
        let mut rng = Xoshiro256pp::seed_from(2);
        let t = Tensor::randn(&[100, 100], 0.5, &mut rng);
        let n = t.len() as f32;
        let mean = t.sum() / n;
        let var = t
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 0.25).abs() < 0.02, "var {var}");
    }

    #[test]
    fn norms() {
        let t = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(t.norm_sq(), 25.0);
        assert_eq!(t.norm(), 5.0);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.5, 1.0], &[2]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
