//! Trace determinism: under a [`LogicalClock`], two identical seeded
//! runs produce byte-identical JSONL trace streams — and so do runs at
//! different worker-thread counts, because parallel client work records
//! into per-client span buffers that the engine replays in sampled
//! order with fresh main-clock ticks.

use fedwcm_algos::fedavg::FedAvg;
use fedwcm_data::longtail::longtail_counts;
use fedwcm_data::partition::paper_partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_fl::{FlConfig, History, Simulation};
use fedwcm_nn::models::mlp;
use fedwcm_stats::Xoshiro256pp;
use fedwcm_trace::{JsonlSink, LogicalClock, MetricsRegistry, SharedBuf, Tracer};
use std::sync::Arc;

/// Run a small traced simulation and return the raw JSONL bytes plus
/// the history (whose `metrics` field carries the registry snapshot).
fn traced_run(threads: usize) -> (Vec<u8>, History) {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 30, 0.5);
    let train = spec.generate_train(&counts, 77);
    let test = spec.generate_test(77);

    let mut cfg = FlConfig::default_sim();
    cfg.clients = 5;
    cfg.participation = 0.6;
    cfg.rounds = 3;
    cfg.eval_every = 2;
    cfg.threads = threads;

    let part = paper_partition(&train, cfg.clients, 0.5, cfg.seed);
    let views = part.views(&train);

    let buf = SharedBuf::new();
    let tracer = Tracer::new(
        Box::new(LogicalClock::new()),
        Arc::new(JsonlSink::new(buf.clone())),
    );
    let sim = Simulation::new(
        cfg,
        &train,
        &test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(9);
            mlp(64, &[16], 10, &mut rng)
        }),
    )
    .with_tracer(tracer.clone())
    .with_metrics(Arc::new(MetricsRegistry::new()));

    let history = sim.run(&mut FedAvg::new());
    tracer.flush();
    (buf.contents(), history)
}

#[test]
fn same_seed_runs_produce_identical_traces() {
    let (a, _) = traced_run(1);
    let (b, _) = traced_run(1);
    assert!(!a.is_empty(), "trace should not be empty");
    assert_eq!(a, b, "two identical seeded runs must trace identically");
}

#[test]
fn trace_bytes_identical_across_thread_counts() {
    let (t1, h1) = traced_run(1);
    let (t4, h4) = traced_run(4);
    assert_eq!(
        t1, t4,
        "LogicalClock traces must be bitwise identical at 1 vs 4 threads"
    );
    assert_eq!(
        h1.metrics, h4.metrics,
        "metrics snapshots must not depend on the worker count"
    );
}

#[test]
fn trace_contains_the_span_taxonomy() {
    let (bytes, history) = traced_run(2);
    let text = String::from_utf8(bytes).expect("JSONL is UTF-8");
    for name in [
        "round",
        "client_update",
        "local_epoch",
        "aggregate",
        "evaluate",
    ] {
        assert!(
            text.contains(&format!("\"name\":\"{name}\"")),
            "trace missing span {name}"
        );
    }
    // Every line parses as a flat JSON object with the fixed key order.
    for line in text.lines() {
        assert!(line.starts_with("{\"t\":"), "bad line {line}");
        assert!(line.ends_with('}'), "bad line {line}");
    }
    assert!(history.metrics.get("fl.rounds").is_some());
}
