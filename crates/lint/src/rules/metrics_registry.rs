//! `metrics-registry` — every span, point, and metric name resolves to
//! a constant in `crates/trace/src/names.rs`.
//!
//! The tracing and metrics surface is string-keyed (`tracer.span("…")`,
//! `reg.counter_add("…", n)`), which is exactly where taxonomies rot: a
//! typo'd key silently splits a time series, and a renamed span orphans
//! every dashboard that watched it. The registry module turns each name
//! into a `pub const` — this rule then closes the loop statically:
//!
//! * a **string literal** in name position at a call site is an error
//!   (use the constant — or add one);
//! * a **constant** in name position must resolve to the registry; an
//!   unknown `SCREAMING_CASE` name is a typo and an error;
//! * a **registry constant no code references** is dead taxonomy and an
//!   error at its declaration;
//! * a **`format!` name** (the per-class gauges) must mention a
//!   registered `…_PREFIX` constant rather than bake the prefix into
//!   its template.
//!
//! Name position is one indexed argument per call — the first for
//! `span`/`point`/`counter_add`/`gauge_set`/`observe` method calls and
//! `local::span`/`local::point` calls, the second for `observe_phase`
//! (whose first is the registry handle). Other arguments are values
//! (field payloads, histogram bounds), never names.
//! Lowercase variables in name position are accepted: helpers
//! that thread a `name: &str` parameter through (e.g. `observe_phase`
//! itself) are checked at *their* call sites, where the constant
//! appears. The rule runs in library crates outside test code; the
//! registry file itself is exempt.

use crate::engine::{Diagnostic, FileCtx};
use crate::lexer::TokKind;
use std::collections::BTreeMap;

const RULE: &str = "metrics-registry";

/// Path suffix identifying the registry module.
const REGISTRY_PATH: &str = "trace/src/names.rs";

/// Methods with a name-position argument, and which argument it is.
/// (`observe(name, bounds, v)` takes its bounds array by constant too —
/// indexing keeps `LAYER_BOUNDS` in argument 1 out of name position.)
const NAME_METHODS: &[(&str, usize)] = &[
    ("span", 0),
    ("point", 0),
    ("counter_add", 0),
    ("gauge_set", 0),
    ("observe", 0),
    ("observe_phase", 1),
];

/// `module::fn` free calls whose first argument is a name.
const NAME_CALLS: &[(&str, &str)] = &[("local", "span"), ("local", "point")];

/// One registry constant: `pub const NAME: &str = "value";`.
struct RegConst {
    name: String,
    line: usize,
}

/// Token-scan a registry file for its string constants. The mini-AST
/// only models functions, so module-level consts are read straight off
/// the token stream: `const <IDENT> … = "…"`.
fn extract_registry(ctx: &FileCtx) -> Vec<RegConst> {
    let mut out = Vec::new();
    let code = &ctx.code;
    let mut k = 0;
    while k < code.len() {
        let t = &ctx.toks[code[k]];
        if matches!(t.kind, TokKind::Ident) && t.text == "const" {
            if let Some(name_tok) = code.get(k + 1).map(|&i| &ctx.toks[i]) {
                if matches!(name_tok.kind, TokKind::Ident) {
                    // Confirm a string value before the terminating `;`.
                    let mut j = k + 2;
                    let mut is_str = false;
                    while j < code.len() {
                        let tj = &ctx.toks[code[j]];
                        if tj.is_punct(';') {
                            break;
                        }
                        if matches!(tj.kind, TokKind::Str) {
                            is_str = true;
                        }
                        j += 1;
                    }
                    if is_str {
                        out.push(RegConst {
                            name: name_tok.text.clone(),
                            line: name_tok.line,
                        });
                    }
                    k = j;
                    continue;
                }
            }
        }
        k += 1;
    }
    out
}

/// Is this identifier a constant-style name (`FL_ALPHA`, `ROUND`)?
fn is_screaming(name: &str) -> bool {
    name.chars().any(|c| c.is_ascii_uppercase())
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// A name-position argument found at a call site.
enum NameArg<'a> {
    /// String literal (value includes the quotes as lexed).
    Literal(&'a str, usize),
    /// `SCREAMING_CASE` constant reference (last path segment).
    Const(&'a str, usize),
    /// `format!(…)` building a dynamic name; `true` when some argument
    /// references a `SCREAMING_CASE` constant.
    Format(bool, usize),
}

/// Classify the name-position argument of one call, if present.
fn classify_args<'a>(args: &'a [crate::ast::Expr], idx: usize, out: &mut Vec<NameArg<'a>>) {
    use crate::ast::Expr;
    if let Some(a) = args.get(idx) {
        // See through `&format!(…)` / `&NAME`.
        let mut a = a;
        while let Expr::Unary { expr, .. } = a {
            a = expr;
        }
        match a {
            Expr::Lit { text, line } if text.starts_with('"') => {
                out.push(NameArg::Literal(text, *line));
            }
            Expr::Path { segs, line } => {
                if let Some(last) = segs.last() {
                    if is_screaming(last) {
                        out.push(NameArg::Const(last, *line));
                    }
                }
            }
            Expr::Macro { name, args, line } if name == "format" => {
                let mut has_const = false;
                for ma in args {
                    ma.walk(&mut |e| {
                        if let Expr::Path { segs, .. } = e {
                            if segs.last().is_some_and(|s| is_screaming(s)) {
                                has_const = true;
                            }
                        }
                    });
                }
                out.push(NameArg::Format(has_const, *line));
            }
            _ => {}
        }
    }
}

/// Run the rule over the parsed workspace.
pub fn check_metrics_registry(files: &[FileCtx], diags: &mut Vec<Diagnostic>) {
    use crate::ast::Expr;

    // The registry: constants from any `trace/src/names.rs` in the set,
    // keyed by name → (file index, declaration line).
    let mut registry: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for (fi, ctx) in files.iter().enumerate() {
        if ctx.path.ends_with(REGISTRY_PATH) {
            for c in extract_registry(ctx) {
                registry.entry(c.name).or_insert((fi, c.line));
            }
        }
    }

    for ctx in files {
        if !ctx.is_lib_crate() || ctx.path.ends_with(REGISTRY_PATH) {
            continue;
        }
        for f in &ctx.ast.fns {
            if ctx.is_test_line(f.line) {
                continue;
            }
            let mut names: Vec<NameArg<'_>> = Vec::new();
            f.body.walk(&mut |e| match e {
                Expr::MethodCall { method, args, .. } => {
                    if let Some((_, idx)) = NAME_METHODS.iter().find(|(m, _)| *m == method.as_str())
                    {
                        classify_args(args, *idx, &mut names);
                    }
                }
                Expr::Call { callee, args, .. } => {
                    if let Expr::Path { segs, .. } = &**callee {
                        if segs.len() >= 2 {
                            let pair =
                                (segs[segs.len() - 2].as_str(), segs[segs.len() - 1].as_str());
                            if NAME_CALLS.contains(&pair) {
                                classify_args(args, 0, &mut names);
                            }
                        }
                    }
                }
                _ => {}
            });
            for n in names {
                match n {
                    NameArg::Literal(text, line) => {
                        if ctx.is_test_line(line) {
                            continue;
                        }
                        diags.push(ctx.diag(
                            RULE,
                            line,
                            format!(
                                "literal span/metric name {text} — use a constant from \
                                 `fedwcm_trace::names` (add one if this is a new name) so the \
                                 telemetry taxonomy stays in one auditable place"
                            ),
                        ));
                    }
                    NameArg::Const(name, line) => {
                        if !registry.is_empty()
                            && !registry.contains_key(name)
                            && !ctx.is_test_line(line)
                        {
                            diags.push(ctx.diag(
                                RULE,
                                line,
                                format!(
                                    "`{name}` does not resolve to a constant in \
                                     `crates/trace/src/names.rs` — a typo'd name silently \
                                     splits its time series"
                                ),
                            ));
                        }
                    }
                    NameArg::Format(has_const, line) => {
                        if !registry.is_empty() && !has_const && !ctx.is_test_line(line) {
                            diags.push(
                                ctx.diag(
                                    RULE,
                                    line,
                                    "dynamic span/metric name built without a registered \
                                 `…_PREFIX` constant — `format!` the suffix onto a \
                                 `fedwcm_trace::names` prefix instead of baking the \
                                 prefix into the template"
                                        .to_string(),
                                ),
                            );
                        }
                    }
                }
            }
        }
    }

    // Dead constants: a registry name no other file's code mentions.
    for (name, &(fi, line)) in &registry {
        let used = files.iter().enumerate().any(|(i, ctx)| {
            i != fi
                && ctx
                    .toks
                    .iter()
                    .any(|t| matches!(t.kind, TokKind::Ident) && t.text == *name)
        });
        if !used {
            diags.push(files[fi].diag(
                RULE,
                line,
                format!(
                    "registry constant `{name}` is referenced by no code — dead taxonomy \
                     entries hide which telemetry actually exists; remove it or wire it up"
                ),
            ));
        }
    }
}
