//! im2col / col2im lowering for convolutions.
//!
//! A convolution over an input `[c_in, h, w]` with `kh×kw` kernels, stride
//! `s` and zero padding `p` is lowered to a matrix multiply:
//! the patch matrix has shape `[c_in*kh*kw, oh*ow]`; multiplying the weight
//! matrix `[c_out, c_in*kh*kw]` by it yields the output `[c_out, oh*ow]`.
//! `col2im` scatters gradients back — the exact adjoint of `im2col`.

/// Static description of a 2-D convolution geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConvGeom {
    /// Input channels.
    pub c_in: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dims).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvGeom {
    /// Output height.
    pub fn oh(&self) -> usize {
        assert!(
            self.h + 2 * self.pad >= self.kh,
            "kernel taller than padded input"
        );
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    pub fn ow(&self) -> usize {
        assert!(
            self.w + 2 * self.pad >= self.kw,
            "kernel wider than padded input"
        );
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Rows of the patch matrix: `c_in * kh * kw`.
    pub fn patch_rows(&self) -> usize {
        self.c_in * self.kh * self.kw
    }

    /// Columns of the patch matrix: `oh * ow`.
    pub fn patch_cols(&self) -> usize {
        self.oh() * self.ow()
    }

    /// Input buffer length `c_in*h*w`.
    pub fn input_len(&self) -> usize {
        self.c_in * self.h * self.w
    }
}

/// Lower one image `[c_in, h, w]` into the patch matrix
/// `[patch_rows, patch_cols]` (row-major into `cols`).
pub fn im2col(geom: &ConvGeom, input: &[f32], cols: &mut [f32]) {
    assert_eq!(input.len(), geom.input_len(), "input buffer size");
    assert_eq!(
        cols.len(),
        geom.patch_rows() * geom.patch_cols(),
        "cols buffer size"
    );
    let (oh, ow) = (geom.oh(), geom.ow());
    let ncols = oh * ow;
    let mut row = 0usize;
    for c in 0..geom.c_in {
        let chan = &input[c * geom.h * geom.w..(c + 1) * geom.h * geom.w];
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                let out_row = &mut cols[row * ncols..(row + 1) * ncols];
                let mut col = 0usize;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= geom.h as isize {
                        out_row[col..col + ow].fill(0.0);
                        col += ow;
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        out_row[col] = if ix < 0 || ix >= geom.w as isize {
                            0.0
                        } else {
                            chan[iy * geom.w + ix as usize]
                        };
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-add the patch-matrix gradient back into
/// the input gradient buffer (which must be pre-zeroed by the caller if a
/// fresh gradient is wanted — the kernel accumulates).
pub fn col2im(geom: &ConvGeom, cols: &[f32], grad_input: &mut [f32]) {
    assert_eq!(grad_input.len(), geom.input_len(), "grad buffer size");
    assert_eq!(
        cols.len(),
        geom.patch_rows() * geom.patch_cols(),
        "cols buffer size"
    );
    let (oh, ow) = (geom.oh(), geom.ow());
    let ncols = oh * ow;
    let mut row = 0usize;
    for c in 0..geom.c_in {
        let base = c * geom.h * geom.w;
        for ky in 0..geom.kh {
            for kx in 0..geom.kw {
                let col_row = &cols[row * ncols..(row + 1) * ncols];
                let mut col = 0usize;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.pad as isize;
                    if iy < 0 || iy >= geom.h as isize {
                        col += ow;
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.pad as isize;
                        if ix >= 0 && ix < geom.w as isize {
                            grad_input[base + iy * geom.w + ix as usize] += col_row[col];
                        }
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_stats::rng::{Rng, Xoshiro256pp};

    fn geom(c: usize, h: usize, w: usize, k: usize, s: usize, p: usize) -> ConvGeom {
        ConvGeom {
            c_in: c,
            h,
            w,
            kh: k,
            kw: k,
            stride: s,
            pad: p,
        }
    }

    #[test]
    fn output_dims() {
        let g = geom(3, 8, 8, 3, 1, 1);
        assert_eq!((g.oh(), g.ow()), (8, 8));
        let g = geom(1, 8, 8, 2, 2, 0);
        assert_eq!((g.oh(), g.ow()), (4, 4));
    }

    #[test]
    fn im2col_identity_kernel() {
        // 1×1 kernel, stride 1, no pad: patch matrix equals the input.
        let g = geom(2, 3, 3, 1, 1, 0);
        let input: Vec<f32> = (0..g.input_len()).map(|x| x as f32).collect();
        let mut cols = vec![0.0; g.patch_rows() * g.patch_cols()];
        im2col(&g, &input, &mut cols);
        assert_eq!(cols, input);
    }

    #[test]
    fn im2col_known_patches() {
        // 1 channel, 3×3 input, 2×2 kernel, stride 1, no pad → 2×2 output.
        let g = geom(1, 3, 3, 2, 1, 0);
        let input = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0];
        let mut cols = vec![0.0; g.patch_rows() * g.patch_cols()];
        im2col(&g, &input, &mut cols);
        // Rows are kernel positions (ky,kx), cols are output positions.
        let expect = [
            0.0, 1.0, 3.0, 4.0, // (0,0)
            1.0, 2.0, 4.0, 5.0, // (0,1)
            3.0, 4.0, 6.0, 7.0, // (1,0)
            4.0, 5.0, 7.0, 8.0, // (1,1)
        ];
        assert_eq!(cols, expect);
    }

    #[test]
    fn padding_zeroes_border() {
        let g = geom(1, 2, 2, 3, 1, 1);
        let input = [1.0, 2.0, 3.0, 4.0];
        let mut cols = vec![0.0; g.patch_rows() * g.patch_cols()];
        im2col(&g, &input, &mut cols);
        // Top-left kernel tap at output (0,0) reads the padded corner.
        assert_eq!(cols[0], 0.0);
        // Center tap (ky=1,kx=1) at output (0,0) reads input (0,0).
        let ncols = g.patch_cols();
        assert_eq!(cols[(3 + 1) * ncols], 1.0);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // Adjoint test: <im2col(x), y> == <x, col2im(y)> for random x, y.
        let g = geom(3, 7, 6, 3, 2, 1);
        let mut rng = Xoshiro256pp::seed_from(7);
        let x: Vec<f32> = (0..g.input_len()).map(|_| rng.next_f32() - 0.5).collect();
        let y: Vec<f32> = (0..g.patch_rows() * g.patch_cols())
            .map(|_| rng.next_f32() - 0.5)
            .collect();
        let mut ax = vec![0.0; y.len()];
        im2col(&g, &x, &mut ax);
        let mut aty = vec![0.0; x.len()];
        col2im(&g, &y, &mut aty);
        let lhs: f32 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn col2im_counts_patch_coverage() {
        // All-ones patch gradient: each input pixel accumulates once per
        // patch containing it. With 1×1 kernels that is exactly once.
        let g = geom(1, 4, 4, 1, 1, 0);
        let cols = vec![1.0; g.patch_rows() * g.patch_cols()];
        let mut grad = vec![0.0; g.input_len()];
        col2im(&g, &cols, &mut grad);
        assert!(grad.iter().all(|&x| x == 1.0));
    }
}
