//! Figure 10: test accuracy vs local epochs {1, 5, 10, 20} for
//! FedAvg / FedCM / FedWCM on CIFAR-10 (β = 0.6, IF = 0.1).

use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::{print_table, run_cell};
use fedwcm_experiments::{parse_args, ExpConfig, Method, Scale};

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let methods = [Method::FedAvg, Method::FedCm, Method::FedWcm];
    let headers: Vec<String> = methods.iter().map(|m| m.label().to_string()).collect();
    let epochs: &[usize] = match cli.scale {
        Scale::Smoke => &[1, 2, 4],
        _ => &[1, 5, 10, 20],
    };
    let mut rows = Vec::new();
    for &e in epochs {
        let mut exp = ExpConfig::new(DatasetPreset::Cifar10, 0.1, 0.6, cli.scale, cli.seed);
        exp.local_epochs = e;
        let values: Vec<f64> = methods.iter().map(|&m| run_cell(&exp, m, &cli)).collect();
        console.info(format!("[fig10] epochs={e} done"));
        rows.push((format!("E={e}"), values));
    }
    print_table("Fig.10 — accuracy vs local epochs", &headers, &rows);
    println!(
        "\nExpected shape (paper Fig. 10): FedWCM leads at every epoch\n\
         setting and benefits from more local epochs; FedCM is erratic."
    );
}
