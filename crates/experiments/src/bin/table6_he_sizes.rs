//! Table 6: homomorphic-encryption overhead — plaintext vs ciphertext
//! sizes for {10, 20, 50, 100} classes, plus per-client encryption time
//! and the 100-client total-communication figure from Appendix C.

use fedwcm_experiments::parse_args;
use fedwcm_he::protocol::aggregate_distributions;
use fedwcm_he::rlwe::RlweParams;
use fedwcm_stats::rng::{Rng, Xoshiro256pp};

fn main() {
    let cli = parse_args(std::env::args());
    let params = RlweParams::default_params();
    println!("# Table 6 — HE distribution-aggregation overhead");
    println!(
        "# ring degree N={}, plaintext modulus t=2^20, q=2^62",
        params.degree
    );
    println!(
        "\n| {:>8} | {:>16} | {:>17} | {:>20} | {:>14} |",
        "classes", "plaintext (B)", "ciphertext (B)", "enc time/client (s)", "exact result"
    );

    let clients = 100usize;
    let mut rng = Xoshiro256pp::seed_from(cli.seed);
    for classes in [10usize, 20, 50, 100] {
        // Random per-client class counts (as a partition would produce).
        let counts: Vec<Vec<usize>> = (0..clients)
            .map(|_| (0..classes).map(|_| rng.index(60)).collect())
            .collect();
        let mut expected = vec![0usize; classes];
        for row in &counts {
            for (e, &c) in expected.iter_mut().zip(row) {
                *e += c;
            }
        }
        let (global, report) = aggregate_distributions(&counts, params, cli.seed);
        let exact = global == expected;
        println!(
            "| {:>8} | {:>16} | {:>17} | {:>20.6} | {:>14} |",
            classes,
            report.plaintext_bytes,
            report.ciphertext_bytes,
            report.encrypt_seconds_per_client,
            exact
        );
        if classes == 10 {
            println!(
                "# 100-client total upload: {:.2} MB (paper: 13.05 MB with BFV/TenSEAL)",
                report.total_upload_bytes as f64 / 1e6
            );
        }
        assert!(exact, "protocol must aggregate exactly");
    }
    println!(
        "\nExpected shape (paper Table 6): plaintext grows linearly with\n\
         classes; ciphertext size is constant (fixed ring parameters)."
    );
}
