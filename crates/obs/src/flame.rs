//! Folded-stack flame output.
//!
//! [`folded_stacks`] renders a [`SpanForest`] in the `flamegraph.pl`
//! collapsed format: one line per unique span path, `names;joined;by;
//! semicolons`, a space, and the total *self* ticks accumulated at
//! that path. Feeding the output to any standard flame-graph renderer
//! visualizes where the logical clock's ticks went. Paths aggregate
//! over a `BTreeMap`, so the output is sorted and byte-stable — two
//! runs of the same deterministic experiment produce identical flame
//! files.

use std::collections::BTreeMap;

use crate::tree::SpanForest;

/// Accumulate self-ticks per span path. Paths with zero self time are
/// kept (count > 0 shows the span existed even if children covered it
/// entirely) — renderers treat zero-width frames as structure.
pub fn fold(forest: &SpanForest) -> BTreeMap<String, u64> {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    forest.visit(&mut |path, node| {
        let mut key = String::with_capacity(32);
        for part in path {
            key.push_str(part);
            key.push(';');
        }
        key.push_str(&node.name);
        *folded.entry(key).or_insert(0) += node.self_ticks();
    });
    folded
}

/// Render the folded stacks as text: `path ticks\n` per line, sorted
/// by path.
pub fn folded_stacks(forest: &SpanForest) -> String {
    let folded = fold(forest);
    let mut out = String::with_capacity(folded.len() * 32);
    for (path, ticks) in &folded {
        out.push_str(path);
        out.push(' ');
        out.push_str(&ticks.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::parse_trace;
    use crate::tree::build_forest;

    fn forest_of(lines: &[&str]) -> SpanForest {
        let text: String = lines.iter().map(|l| format!("{l}\n")).collect();
        build_forest(&parse_trace(&text).expect("parses")).expect("well-formed")
    }

    #[test]
    fn folds_self_ticks_per_path() {
        let f = forest_of(&[
            "{\"t\":1,\"ev\":\"start\",\"name\":\"round\"}",
            "{\"t\":2,\"ev\":\"start\",\"name\":\"client_update\"}",
            "{\"t\":3,\"ev\":\"start\",\"name\":\"local_epoch\"}",
            "{\"t\":7,\"ev\":\"end\",\"name\":\"local_epoch\"}",
            "{\"t\":8,\"ev\":\"end\",\"name\":\"client_update\"}",
            "{\"t\":9,\"ev\":\"start\",\"name\":\"client_update\"}",
            "{\"t\":11,\"ev\":\"end\",\"name\":\"client_update\"}",
            "{\"t\":12,\"ev\":\"end\",\"name\":\"round\"}",
        ]);
        assert_eq!(
            folded_stacks(&f),
            "round 3\nround;client_update 4\nround;client_update;local_epoch 4\n"
        );
    }

    #[test]
    fn repeated_paths_aggregate_and_output_is_sorted() {
        let f = forest_of(&[
            "{\"t\":1,\"ev\":\"start\",\"name\":\"evaluate\"}",
            "{\"t\":3,\"ev\":\"end\",\"name\":\"evaluate\"}",
            "{\"t\":4,\"ev\":\"start\",\"name\":\"aggregate\"}",
            "{\"t\":6,\"ev\":\"end\",\"name\":\"aggregate\"}",
            "{\"t\":7,\"ev\":\"start\",\"name\":\"aggregate\"}",
            "{\"t\":9,\"ev\":\"end\",\"name\":\"aggregate\"}",
        ]);
        assert_eq!(folded_stacks(&f), "aggregate 4\nevaluate 2\n");
    }

    #[test]
    fn empty_forest_folds_to_nothing() {
        assert_eq!(folded_stacks(&SpanForest::default()), "");
    }
}
