//! Property-based tests for the FedWCM mechanisms: Eq. (3)–(5) invariants
//! over randomly generated federated configurations.

use fedwcm_core::adaptive::{adaptive_alpha, score_ratio, ALPHA_MAX, ALPHA_MIN};
use fedwcm_core::{
    aggregation_weights, client_scores, global_distribution, imbalance_degree, temperature,
};
use fedwcm_data::dataset::{ClientView, Dataset};
use fedwcm_tensor::Tensor;
use proptest::prelude::*;

/// Build a dataset + views realising an arbitrary client×class count
/// matrix (rows of `counts`).
fn views_from_counts(counts: &[Vec<usize>]) -> (Dataset, Vec<ClientView>) {
    let classes = counts[0].len();
    let mut labels = Vec::new();
    let mut owners = Vec::new();
    for (k, row) in counts.iter().enumerate() {
        for (c, &n) in row.iter().enumerate() {
            for _ in 0..n {
                labels.push(c);
                owners.push(k);
            }
        }
    }
    let n = labels.len().max(1);
    if labels.is_empty() {
        labels.push(0);
        owners.push(0);
    }
    let ds = Dataset::new(Tensor::zeros(&[n, 2]), labels, classes);
    let views = (0..counts.len())
        .map(|k| {
            let idx: Vec<usize> = owners
                .iter()
                .enumerate()
                .filter(|&(_, &o)| o == k)
                .map(|(i, _)| i)
                .collect();
            ClientView::new(idx, &ds)
        })
        .collect();
    (ds, views)
}

fn counts_strategy() -> impl Strategy<Value = Vec<Vec<usize>>> {
    (2usize..8, 2usize..10).prop_flat_map(|(clients, classes)| {
        prop::collection::vec(
            prop::collection::vec(0usize..40, classes..=classes),
            clients..=clients,
        )
        .prop_filter("need some data", |m| {
            m.iter().flatten().sum::<usize>() > 0
                && m.iter().all(|row| row.iter().sum::<usize>() > 0)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scores_nonnegative_and_bounded(counts in counts_strategy()) {
        let (_, views) = views_from_counts(&counts);
        let classes = counts[0].len();
        let global = global_distribution(&views, classes);
        let target = vec![1.0 / classes as f64; classes];
        let scores = client_scores(&views, &global, &target);
        prop_assert_eq!(scores.len(), views.len());
        for &s in &scores {
            prop_assert!((0.0..=1.0).contains(&s), "score {}", s);
        }
    }

    #[test]
    fn weights_form_simplex(counts in counts_strategy()) {
        let (_, views) = views_from_counts(&counts);
        let classes = counts[0].len();
        let global = global_distribution(&views, classes);
        let target = vec![1.0 / classes as f64; classes];
        let scores = client_scores(&views, &global, &target);
        let t = temperature(&global, &target);
        let w = aggregation_weights(&scores, t);
        prop_assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-8);
        prop_assert!(w.iter().all(|&x| x > 0.0 && x.is_finite()));
        // Weight ordering follows score ordering.
        for i in 0..w.len() {
            for j in 0..w.len() {
                if scores[i] > scores[j] {
                    prop_assert!(w[i] >= w[j] - 1e-12);
                }
            }
        }
    }

    #[test]
    fn alpha_always_in_theorem_band(
        d in 0.0f64..1.0, classes in 1usize..200, q in 0.0f64..20.0,
    ) {
        let a = adaptive_alpha(d, classes, q);
        prop_assert!((ALPHA_MIN..=ALPHA_MAX).contains(&a));
    }

    #[test]
    fn alpha_monotone_in_imbalance(classes in 2usize..100, q in 0.1f64..3.0) {
        let mut prev = 0.0;
        for step in 0..10 {
            let d = step as f64 / 10.0;
            let a = adaptive_alpha(d, classes, q);
            prop_assert!(a >= prev - 1e-12, "alpha not monotone at D={d}");
            prev = a;
        }
    }

    #[test]
    fn score_ratio_scale_invariant(
        scores in prop::collection::vec(0.01f64..1.0, 1..10), scale in 0.1f64..10.0,
    ) {
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        let q1 = score_ratio(&scores, mean);
        let scaled: Vec<f64> = scores.iter().map(|s| s * scale).collect();
        let q2 = score_ratio(&scaled, mean * scale);
        prop_assert!((q1 - q2).abs() < 1e-9);
    }

    #[test]
    fn balanced_global_collapses_mechanisms(clients in 2usize..8, classes in 2usize..8, per in 1usize..20) {
        // Identical per-class counts on every client ⇒ uniform global ⇒
        // zero scores, huge temperature, uniform weights, α = base.
        let counts = vec![vec![per; classes]; clients];
        let (_, views) = views_from_counts(&counts);
        let global = global_distribution(&views, classes);
        let target = vec![1.0 / classes as f64; classes];
        prop_assert!(imbalance_degree(&global, &target) < 1e-9);
        let scores = client_scores(&views, &global, &target);
        prop_assert!(scores.iter().all(|&s| s < 1e-9));
        let w = aggregation_weights(&scores, temperature(&global, &target));
        for &x in &w {
            prop_assert!((x - 1.0 / clients as f64).abs() < 1e-6);
        }
        let a = adaptive_alpha(0.0, classes, score_ratio(&scores, 0.0));
        prop_assert_eq!(a, ALPHA_MIN);
    }
}
