//! Classifier-geometry diagnostics (the Appendix-B / neural-collapse
//! toolkit).
//!
//! Minority collapse (Fang et al., 2021) manifests in the classifier
//! head: majority-class rows grow and spread apart while minority-class
//! rows shrink and their pairwise angles close. These metrics quantify
//! that directly from the model's final linear layer:
//!
//! * per-class classifier-row norms,
//! * pairwise cosines between class rows (collapse ⇒ minority cosines
//!   approach each other / 1),
//! * within-class feature variability on a probe set (neural collapse ⇒
//!   → 0 for majority classes first).

use fedwcm_data::dataset::Dataset;
use fedwcm_nn::model::Model;

/// Geometry snapshot of the classifier head.
#[derive(Clone, Debug)]
pub struct ClassifierGeometry {
    /// L2 norm of each class's classifier row.
    pub row_norms: Vec<f64>,
    /// Pairwise cosine matrix between class rows (row-major, `C×C`).
    pub cosines: Vec<f64>,
    /// Number of classes.
    pub classes: usize,
}

impl ClassifierGeometry {
    /// Cosine between the rows of classes `a` and `b`.
    pub fn cosine(&self, a: usize, b: usize) -> f64 {
        self.cosines[a * self.classes + b]
    }

    /// Mean pairwise cosine within a subset of classes (e.g. the tail).
    pub fn mean_cosine_within(&self, subset: &[usize]) -> f64 {
        let mut total = 0.0;
        let mut pairs = 0usize;
        for (i, &a) in subset.iter().enumerate() {
            for &b in &subset[i + 1..] {
                total += self.cosine(a, b);
                pairs += 1;
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total / pairs as f64
        }
    }

    /// Ratio of mean head-half row norm to mean tail-half row norm, with
    /// classes ranked by `train_counts`. > 1 signals head dominance.
    pub fn head_tail_norm_ratio(&self, train_counts: &[usize]) -> f64 {
        assert_eq!(train_counts.len(), self.classes);
        let mut order: Vec<usize> = (0..self.classes).collect();
        order.sort_by(|&a, &b| train_counts[b].cmp(&train_counts[a]));
        let half = self.classes / 2;
        let head: f64 = order[..half]
            .iter()
            .map(|&c| self.row_norms[c])
            .sum::<f64>()
            / half as f64;
        let tail: f64 = order[half..]
            .iter()
            .map(|&c| self.row_norms[c])
            .sum::<f64>()
            / (self.classes - half) as f64;
        if tail <= 1e-12 {
            f64::INFINITY
        } else {
            head / tail
        }
    }
}

/// Extract the classifier geometry from a model whose final layer is the
/// linear head (`[classes, feat]` weights followed by biases).
pub fn classifier_geometry(model: &Model) -> ClassifierGeometry {
    let classes = model.out_features();
    let (off, len) = model.layer_param_range(model.num_layers() - 1);
    assert!(len > classes, "final layer is not a linear head");
    let feat = (len - classes) / classes;
    assert_eq!(feat * classes + classes, len, "unexpected head layout");
    let w = &model.params()[off..off + classes * feat];

    let rows: Vec<&[f32]> = (0..classes).map(|c| &w[c * feat..(c + 1) * feat]).collect();
    let row_norms: Vec<f64> = rows
        .iter()
        .map(|r| (r.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>()).sqrt())
        .collect();
    let mut cosines = vec![0.0f64; classes * classes];
    for a in 0..classes {
        for b in 0..classes {
            let dot: f64 = rows[a]
                .iter()
                .zip(rows[b])
                .map(|(&x, &y)| x as f64 * y as f64)
                .sum();
            let denom = (row_norms[a] * row_norms[b]).max(1e-12);
            cosines[a * classes + b] = dot / denom;
        }
    }
    ClassifierGeometry {
        row_norms,
        cosines,
        classes,
    }
}

/// Within-class feature variability on a probe set: for each class, the
/// mean squared distance of penultimate features to their class mean,
/// normalised by the overall feature scale. Neural collapse drives this
/// towards zero.
pub fn within_class_variability(
    model: &mut Model,
    probe: &Dataset,
    max_samples: usize,
) -> Vec<f64> {
    let n = probe.len().min(max_samples);
    assert!(n > 0, "empty probe set");
    let idx: Vec<usize> = (0..n).collect();
    let (x, y) = probe.gather(&idx);
    let (_, acts) = model.forward_collect(&x);
    let feats = &acts[acts.len() - 2];
    let dim = feats.cols();
    let classes = probe.classes();

    let mut means = vec![vec![0.0f64; dim]; classes];
    let mut counts = vec![0usize; classes];
    for (r, &label) in y.iter().enumerate() {
        counts[label] += 1;
        for (m, &v) in means[label].iter_mut().zip(feats.row(r)) {
            *m += v as f64;
        }
    }
    for (mean, &cnt) in means.iter_mut().zip(&counts) {
        if cnt > 0 {
            for m in mean.iter_mut() {
                *m /= cnt as f64;
            }
        }
    }
    // Overall scale: mean squared feature norm.
    let scale: f64 = (0..n)
        .map(|r| {
            feats
                .row(r)
                .iter()
                .map(|&v| (v as f64) * (v as f64))
                .sum::<f64>()
        })
        .sum::<f64>()
        / n as f64;
    let scale = scale.max(1e-12);

    let mut var = vec![0.0f64; classes];
    for (r, &label) in y.iter().enumerate() {
        let d2: f64 = feats
            .row(r)
            .iter()
            .zip(&means[label])
            .map(|(&v, &m)| {
                let d = v as f64 - m;
                d * d
            })
            .sum();
        var[label] += d2;
    }
    var.iter()
        .zip(&counts)
        .map(|(&v, &c)| if c > 0 { v / c as f64 / scale } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_data::longtail::longtail_counts;
    use fedwcm_data::synth::DatasetPreset;
    use fedwcm_nn::loss::CrossEntropy;
    use fedwcm_nn::models::mlp;
    use fedwcm_stats::Xoshiro256pp;

    fn trained_longtail_model(seed: u64, imb: f64, steps: usize) -> (Model, Dataset, Vec<usize>) {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 150, imb);
        let train = spec.generate_train(&counts, seed);
        let test = spec.generate_test(seed);
        let mut rng = Xoshiro256pp::seed_from(seed);
        let mut model = mlp(64, &[32], 10, &mut rng);
        let (x, y) = train.as_batch();
        let mut grads = vec![0.0f32; model.param_len()];
        for _ in 0..steps {
            let _ = model.loss_grad(&x, &y, &CrossEntropy, &mut grads);
            fedwcm_nn::opt::sgd_step(model.params_mut(), &grads, 0.1);
        }
        (model, test, counts)
    }

    #[test]
    fn geometry_shapes() {
        let (model, _, _) = trained_longtail_model(1, 1.0, 5);
        let g = classifier_geometry(&model);
        assert_eq!(g.row_norms.len(), 10);
        assert_eq!(g.cosines.len(), 100);
        for c in 0..10 {
            assert!((g.cosine(c, c) - 1.0).abs() < 1e-6);
            assert!(g.row_norms[c] > 0.0);
        }
        // Symmetry.
        assert!((g.cosine(1, 7) - g.cosine(7, 1)).abs() < 1e-12);
    }

    #[test]
    fn longtail_training_inflates_head_rows() {
        let (model, _, counts) = trained_longtail_model(2, 0.02, 120);
        let g = classifier_geometry(&model);
        let ratio = g.head_tail_norm_ratio(&counts);
        assert!(ratio > 1.05, "head/tail norm ratio {ratio}");
    }

    #[test]
    fn balanced_training_keeps_rows_even() {
        let (model, _, counts) = trained_longtail_model(3, 1.0, 120);
        let g = classifier_geometry(&model);
        let ratio = g.head_tail_norm_ratio(&counts);
        assert!(ratio < 1.3, "balanced ratio {ratio}");
    }

    #[test]
    fn within_class_variability_decreases_with_training() {
        let (mut fresh, test, _) = trained_longtail_model(4, 1.0, 0);
        let (mut trained, _, _) = trained_longtail_model(4, 1.0, 150);
        let before = within_class_variability(&mut fresh, &test, 300);
        let after = within_class_variability(&mut trained, &test, 300);
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            mean(&after) < mean(&before),
            "variability {} -> {}",
            mean(&before),
            mean(&after)
        );
    }

    #[test]
    fn mean_cosine_within_subsets() {
        let (model, _, _) = trained_longtail_model(5, 0.1, 50);
        let g = classifier_geometry(&model);
        let all: Vec<usize> = (0..10).collect();
        let m = g.mean_cosine_within(&all);
        assert!((-1.0..=1.0).contains(&m));
        assert_eq!(g.mean_cosine_within(&[3]), 0.0);
    }
}
