#!/bin/sh
# Extra artifacts + re-runs (BalanceFL fix landed after the first fig7).
set -x
cd "$(dirname "$0")/.."
R=results
run() { bin=$1; shift; cargo run --release -q -p fedwcm-experiments --bin "$bin" -- "$@" > "$R/$bin.txt" 2>"$R/$bin.log"; }
run appendix_comms
run appendix_geometry --rounds 60
run fig7_convergence --rounds 80
echo EXTRAS_DONE
