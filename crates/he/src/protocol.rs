//! The BatchCrypt-style private distribution-aggregation protocol (§5.5).
//!
//! 1. a randomly selected client generates the key pair and shares the
//!    encryption capability (symmetric key in this functional model);
//! 2. every client encrypts its local class-count vector and uploads it;
//! 3. the server sums the ciphertexts homomorphically (never decrypting);
//! 4. the key holder decrypts the aggregate and publishes the global
//!    class distribution.
//!
//! The report mirrors Table 6's accounting: plaintext size, ciphertext
//! size, per-client encryption time, and total upload volume (which is
//! independent of the client count per ciphertext, as the paper notes).

use crate::rlwe::{Ciphertext, RlweParams, SecretKey};
use fedwcm_stats::rng::Xoshiro256pp;
use fedwcm_trace::{Clock, WallClock};

/// Size/time accounting for one protocol run.
#[derive(Clone, Debug)]
pub struct ProtocolReport {
    /// Number of classes aggregated.
    pub classes: usize,
    /// Number of participating clients.
    pub clients: usize,
    /// Serialized plaintext size per client (bytes): 8-byte counts plus an
    /// 8-byte length header.
    pub plaintext_bytes: usize,
    /// Serialized ciphertext size per client (bytes).
    pub ciphertext_bytes: usize,
    /// Total upload volume (all clients' ciphertexts, bytes).
    pub total_upload_bytes: usize,
    /// Mean per-client encryption time (seconds).
    pub encrypt_seconds_per_client: f64,
    /// Aggregation + decryption time on the server/key-holder (seconds).
    pub aggregate_seconds: f64,
}

/// Run the full protocol over per-client class counts; returns the exact
/// global counts and the accounting report.
pub fn aggregate_distributions(
    client_counts: &[Vec<usize>],
    params: RlweParams,
    seed: u64,
) -> (Vec<usize>, ProtocolReport) {
    assert!(!client_counts.is_empty(), "no clients");
    let classes = client_counts[0].len();
    assert!(
        classes >= 1 && classes <= params.degree,
        "class count must fit the ring"
    );
    assert!(
        client_counts.iter().all(|c| c.len() == classes),
        "inconsistent class counts"
    );
    // Noise/overflow budget: the summed counts must stay below t.
    let max_total: u64 = (0..classes)
        .map(|c| client_counts.iter().map(|v| v[c] as u64).sum())
        .max()
        .unwrap_or(0);
    assert!(
        max_total < params.plain_modulus,
        "aggregated counts exceed the plaintext modulus"
    );

    // Step 1: key generation by a designated client.
    let mut key_rng = Xoshiro256pp::stream(seed, &[0x4E1, 0]);
    let key = SecretKey::generate(params, &mut key_rng);

    // Step 2: per-client encryption. Timings only measure cost for the
    // report (never fed back into any computation) and come from the
    // sanctioned wall-time source, fedwcm-trace's `WallClock`.
    let clock = WallClock::new();
    let t_enc = clock.tick();
    let cts: Vec<Ciphertext> = client_counts
        .iter()
        .enumerate()
        .map(|(k, counts)| {
            let mut rng = Xoshiro256pp::stream(seed, &[0x4E1, 1 + k as u64]);
            let values: Vec<u64> = counts.iter().map(|&c| c as u64).collect();
            key.encrypt(&values, &mut rng)
        })
        .collect();
    let encrypt_seconds_per_client =
        (clock.tick() - t_enc) as f64 / 1e9 / client_counts.len() as f64;

    // Steps 3–4: homomorphic aggregation, then key-holder decryption.
    let t_agg = clock.tick();
    let mut acc = cts[0].clone();
    for ct in &cts[1..] {
        acc.add_assign(ct);
    }
    let decrypted = key.decrypt(&acc, classes);
    let aggregate_seconds = (clock.tick() - t_agg) as f64 / 1e9;

    let global: Vec<usize> = decrypted.iter().map(|&v| v as usize).collect();
    let ciphertext_bytes = params.ciphertext_bytes();
    let report = ProtocolReport {
        classes,
        clients: client_counts.len(),
        plaintext_bytes: 8 + classes * 8,
        ciphertext_bytes,
        total_upload_bytes: ciphertext_bytes.saturating_mul(client_counts.len()),
        encrypt_seconds_per_client,
        aggregate_seconds,
    };
    (global, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_for(clients: usize, classes: usize) -> Vec<Vec<usize>> {
        (0..clients)
            .map(|k| (0..classes).map(|c| (k * 13 + c * 5) % 40).collect())
            .collect()
    }

    #[test]
    fn protocol_recovers_exact_global_counts() {
        let counts = counts_for(20, 10);
        let mut expected = vec![0usize; 10];
        for row in &counts {
            for (e, &c) in expected.iter_mut().zip(row) {
                *e += c;
            }
        }
        let (global, report) = aggregate_distributions(&counts, RlweParams::test_params(), 42);
        assert_eq!(global, expected);
        assert_eq!(report.clients, 20);
        assert_eq!(report.classes, 10);
    }

    #[test]
    fn ciphertext_size_constant_in_classes() {
        let params = RlweParams::test_params();
        let (_, r10) = aggregate_distributions(&counts_for(5, 10), params, 1);
        let (_, r100) = aggregate_distributions(&counts_for(5, 100), params, 1);
        assert_eq!(r10.ciphertext_bytes, r100.ciphertext_bytes);
        // While the plaintext grows linearly — Table 6's contrast.
        assert!(r100.plaintext_bytes > r10.plaintext_bytes * 5);
    }

    #[test]
    fn upload_scales_with_clients_not_classes() {
        let params = RlweParams::test_params();
        let (_, r5) = aggregate_distributions(&counts_for(5, 10), params, 1);
        let (_, r50) = aggregate_distributions(&counts_for(50, 10), params, 1);
        assert_eq!(r50.total_upload_bytes, 10 * r5.total_upload_bytes);
    }

    #[test]
    #[should_panic]
    fn overflow_budget_enforced() {
        // Counts that would exceed the plaintext modulus must be rejected.
        let params = RlweParams::test_params(); // t = 2^16
        let counts = vec![vec![60_000usize; 4]; 3];
        let _ = aggregate_distributions(&counts, params, 1);
    }

    #[test]
    fn deterministic_result_per_seed() {
        let counts = counts_for(8, 12);
        let params = RlweParams::test_params();
        let (a, _) = aggregate_distributions(&counts, params, 9);
        let (b, _) = aggregate_distributions(&counts, params, 9);
        assert_eq!(a, b);
    }
}
