//! RLWE homomorphic-encryption costs: encryption, homomorphic addition,
//! decryption, and the full Table-6 protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedwcm_he::protocol::aggregate_distributions;
use fedwcm_he::rlwe::{RlweParams, SecretKey};
use fedwcm_stats::rng::{Rng, Xoshiro256pp};
use std::hint::black_box;

fn bench_primitives(c: &mut Criterion) {
    let params = RlweParams::default_params();
    let mut rng = Xoshiro256pp::seed_from(1);
    let key = SecretKey::generate(params, &mut rng);
    let values: Vec<u64> = (0..100).map(|i| i * 3).collect();
    let ct1 = key.encrypt(&values, &mut rng);
    let ct2 = key.encrypt(&values, &mut rng);

    c.bench_function("rlwe_encrypt_n4096", |b| {
        b.iter(|| black_box(key.encrypt(black_box(&values), &mut rng)));
    });
    c.bench_function("rlwe_add_n4096", |b| {
        b.iter(|| {
            let mut a = ct1.clone();
            a.add_assign(black_box(&ct2));
            black_box(a)
        });
    });
    c.bench_function("rlwe_decrypt_n4096", |b| {
        b.iter(|| black_box(key.decrypt(black_box(&ct1), 100)));
    });
}

fn bench_protocol(c: &mut Criterion) {
    let mut group = c.benchmark_group("he_protocol_100clients");
    group.sample_size(10);
    let mut rng = Xoshiro256pp::seed_from(2);
    for classes in [10usize, 100] {
        let counts: Vec<Vec<usize>> = (0..100)
            .map(|_| (0..classes).map(|_| rng.index(50)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(classes), &classes, |b, _| {
            b.iter(|| {
                black_box(aggregate_distributions(
                    black_box(&counts),
                    RlweParams::test_params(),
                    7,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(
    name = he;
    config = Criterion::default().sample_size(20);
    targets = bench_primitives, bench_protocol
);
criterion_main!(he);
