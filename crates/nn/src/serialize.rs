//! Flat parameter (de)serialization — checkpointing for trained global
//! models without external dependencies.
//!
//! Wire format: magic `b"FWCM"`, format version (u32 LE), parameter count
//! (u64 LE), then raw little-endian f32 parameters.

use crate::model::Model;

const MAGIC: &[u8; 4] = b"FWCM";
const VERSION: u32 = 1;

/// Serialize a model's parameters to the checkpoint format.
pub fn save_params(model: &Model) -> Vec<u8> {
    let params = model.params();
    let mut out = Vec::with_capacity(16 + params.len() * 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&(params.len() as u64).to_le_bytes());
    for &p in params {
        out.extend_from_slice(&p.to_le_bytes());
    }
    out
}

/// Errors from [`load_params`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// Missing/incorrect magic bytes or truncated header.
    BadHeader,
    /// Unsupported format version.
    BadVersion(u32),
    /// Parameter count does not match the model architecture.
    WrongArity {
        /// Parameters in the checkpoint.
        found: usize,
        /// Parameters the model expects.
        expected: usize,
    },
    /// Body shorter/longer than the declared count.
    Truncated,
    /// Non-finite parameter encountered.
    NonFinite,
}

/// Load a checkpoint produced by [`save_params`] into a model with a
/// matching architecture.
pub fn load_params(model: &mut Model, bytes: &[u8]) -> Result<(), LoadError> {
    if bytes.len() < 16 || &bytes[..4] != MAGIC {
        return Err(LoadError::BadHeader);
    }
    let version = u32::from_le_bytes([bytes[4], bytes[5], bytes[6], bytes[7]]);
    if version != VERSION {
        return Err(LoadError::BadVersion(version));
    }
    let count = u64::from_le_bytes([
        bytes[8], bytes[9], bytes[10], bytes[11], bytes[12], bytes[13], bytes[14], bytes[15],
    ]) as usize;
    if count != model.param_len() {
        return Err(LoadError::WrongArity {
            found: count,
            expected: model.param_len(),
        });
    }
    let body = &bytes[16..];
    if body.len() != count * 4 {
        return Err(LoadError::Truncated);
    }
    let mut params = Vec::with_capacity(count);
    for chunk in body.chunks_exact(4) {
        let v = f32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        if !v.is_finite() {
            return Err(LoadError::NonFinite);
        }
        params.push(v);
    }
    model.set_params(&params);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::mlp;
    use fedwcm_stats::Xoshiro256pp;

    fn model(seed: u64) -> Model {
        let mut rng = Xoshiro256pp::seed_from(seed);
        mlp(8, &[6], 3, &mut rng)
    }

    #[test]
    fn roundtrip_restores_exact_params() {
        let m1 = model(1);
        let bytes = save_params(&m1);
        let mut m2 = model(2);
        assert_ne!(m1.params(), m2.params());
        load_params(&mut m2, &bytes).unwrap();
        assert_eq!(m1.params(), m2.params());
    }

    #[test]
    fn header_validation() {
        let mut m = model(3);
        assert_eq!(load_params(&mut m, b"xxxx"), Err(LoadError::BadHeader));
        let mut bad = save_params(&m);
        bad[0] = b'X';
        assert_eq!(load_params(&mut m, &bad), Err(LoadError::BadHeader));
        let mut badver = save_params(&m);
        badver[4] = 99;
        assert_eq!(load_params(&mut m, &badver), Err(LoadError::BadVersion(99)));
    }

    #[test]
    fn arity_and_truncation_checks() {
        let big = model(4);
        let mut small_rng = Xoshiro256pp::seed_from(5);
        let mut small = mlp(4, &[3], 2, &mut small_rng);
        let bytes = save_params(&big);
        assert!(matches!(
            load_params(&mut small, &bytes),
            Err(LoadError::WrongArity { .. })
        ));
        let mut m = model(6);
        let mut truncated = save_params(&m);
        truncated.pop();
        assert_eq!(load_params(&mut m, &truncated), Err(LoadError::Truncated));
    }

    #[test]
    fn nonfinite_rejected() {
        let mut m = model(7);
        let mut bytes = save_params(&m);
        bytes[16..20].copy_from_slice(&f32::NAN.to_le_bytes());
        assert_eq!(load_params(&mut m, &bytes), Err(LoadError::NonFinite));
    }
}
