//! # fedwcm-suite
//!
//! A from-scratch Rust reproduction of **FedWCM: Unleashing the Potential
//! of Momentum-based Federated Learning in Long-Tailed Scenarios**
//! (ICPP 2025), including every substrate the paper depends on: a neural-
//! network library, synthetic long-tailed federated datasets, an FL
//! simulation engine, eleven baseline algorithms, long-tail-specific
//! methods, an RLWE additively-homomorphic aggregation protocol, and
//! minority-collapse analysis tooling.
//!
//! This facade re-exports the workspace crates under stable paths:
//!
//! ```
//! use fedwcm_suite::prelude::*;
//!
//! // Build a long-tailed federated task and run FedWCM on it.
//! let spec = DatasetPreset::FashionMnist.spec();
//! let counts = longtail_counts(10, 40, 0.1);
//! let train = spec.generate_train(&counts, 42);
//! let test = spec.generate_test(42);
//! let mut cfg = FlConfig::default_sim();
//! cfg.clients = 4;
//! cfg.rounds = 2;
//! cfg.participation = 0.5;
//! let views = paper_partition(&train, cfg.clients, 0.1, 42).views(&train);
//! let sim = Simulation::new(cfg, &train, &test, views, Box::new(|| {
//!     let mut rng = Xoshiro256pp::seed_from(7);
//!     fedwcm_suite::nn::models::mlp(64, &[16], 10, &mut rng)
//! }));
//! let history = sim.run(&mut FedWcm::new());
//! assert_eq!(history.records.len(), 2);
//! ```

#![warn(missing_docs)]

pub use fedwcm_algos as algos;
pub use fedwcm_analysis as analysis;
pub use fedwcm_core as core;
pub use fedwcm_data as data;
pub use fedwcm_faults as faults;
pub use fedwcm_fl as fl;
pub use fedwcm_he as he;
pub use fedwcm_longtail as longtail;
pub use fedwcm_nn as nn;
pub use fedwcm_obs as obs;
pub use fedwcm_parallel as parallel;
pub use fedwcm_stats as stats;
pub use fedwcm_tensor as tensor;
pub use fedwcm_trace as trace;
pub use fedwcm_transport as transport;

/// The most commonly used items in one import.
pub mod prelude {
    pub use fedwcm_algos::{FedAvg, FedCm, FedProx, Scaffold};
    pub use fedwcm_core::{FedWcm, FedWcmOptions, FedWcmX};
    pub use fedwcm_data::longtail::longtail_counts;
    pub use fedwcm_data::partition::{fedgrab_partition, paper_partition};
    pub use fedwcm_data::synth::DatasetPreset;
    pub use fedwcm_data::Dataset;
    pub use fedwcm_faults::{FaultConfig, FaultPlan};
    pub use fedwcm_fl::{
        Cadence, FederatedAlgorithm, FlConfig, History, ServerCheckpoint, Simulation,
    };
    pub use fedwcm_longtail::{BalanceFl, FedGrab};
    pub use fedwcm_stats::{Rng, Xoshiro256pp};
    pub use fedwcm_tensor::Tensor;
    pub use fedwcm_trace::{
        JsonlSink, LogicalClock, MetricsRegistry, MetricsSnapshot, RingSink, Tracer, WallClock,
    };
    pub use fedwcm_transport::{NetConfig, NetPlan, RetryPolicy};
}
