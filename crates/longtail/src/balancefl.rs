//! BalanceFL (Shuai et al., IPSN 2022) — balanced local update scheme.
//!
//! The defining mechanism: make each client's local update behave as if it
//! were computed on a class-uniform distribution. Reproduced with the two
//! core ingredients:
//!
//! 1. **class-balanced resampling** over the client's locally-present
//!    classes (oversampling local tails);
//! 2. **knowledge inheritance** for locally-absent classes: the local
//!    model's logits on absent classes are pulled towards the (frozen)
//!    global model's logits, so locally-missing knowledge is not destroyed
//!    by the local update.

use fedwcm_fl::algorithm::{
    server_step, uniform_average, FederatedAlgorithm, RoundInput, RoundLog,
};
use fedwcm_fl::client::{ClientEnv, ClientUpdate};
use fedwcm_nn::loss::{CrossEntropy, Loss};

/// BalanceFL with inheritance strength `lambda`.
pub struct BalanceFl {
    /// Weight of the absent-class logit-inheritance penalty.
    pub lambda: f32,
    /// Per-step gradient-norm clip. Balanced resampling repeats scarce
    /// samples many times per epoch, which can destabilise local SGD on
    /// tiny tail pools; clipping keeps the local update bounded (the
    /// original trains with standard stabilisation too).
    pub grad_clip: f32,
}

impl BalanceFl {
    /// Standard configuration (λ = 1, clip = 10).
    pub fn new() -> Self {
        BalanceFl {
            lambda: 1.0,
            grad_clip: 10.0,
        }
    }

    /// Custom inheritance strength.
    pub fn with_lambda(lambda: f32) -> Self {
        assert!(lambda >= 0.0);
        BalanceFl {
            lambda,
            grad_clip: 10.0,
        }
    }
}

impl Default for BalanceFl {
    fn default() -> Self {
        Self::new()
    }
}

impl FederatedAlgorithm for BalanceFl {
    fn name(&self) -> String {
        "BalanceFL".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        assert!(!env.view.is_empty(), "sampled an empty client");
        let cfg = env.cfg;
        let mut model = env.model_from(global);
        let mut teacher = env.model_from(global); // frozen global model
        let rng = env.rng();

        // Locally-absent classes (inheritance targets).
        let absent: Vec<usize> = env
            .view
            .class_counts()
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n == 0)
            .map(|(c, _)| c)
            .collect();

        let batches_per_epoch = env.batches_per_epoch();
        let total_steps = batches_per_epoch * cfg.local_epochs;
        let mut grads = vec![0.0f32; model.param_len()];
        let mut loss_acc = 0.0f64;

        let mut sampler = fedwcm_data::sampler::BalanceSampler::new(
            env.view.indices(),
            env.dataset,
            cfg.batch_size,
            rng,
        );
        for _ in 0..total_steps {
            let idx = sampler.next_batch();
            let (x, y) = env.dataset.gather(&idx);
            let logits = model.forward(&x, true);
            let (ce, mut dlogits) = CrossEntropy.loss_and_grad(&logits, &y);
            loss_acc += ce as f64;

            if !absent.is_empty() && self.lambda > 0.0 {
                // Inheritance: ½‖z_c − z̄_c‖² mean over batch and absent
                // classes ⇒ dL/dz_c = λ(z_c − z̄_c)/(batch·|absent|).
                let targets = teacher.forward(&x, false);
                let scale = self.lambda / (x.rows() * absent.len()) as f32;
                for r in 0..x.rows() {
                    for &c in &absent {
                        let diff = logits.at(r, c) - targets.at(r, c);
                        *dlogits.at_mut(r, c) += scale * diff;
                    }
                }
            }
            grads.fill(0.0);
            model.backward(&dlogits, &mut grads);
            fedwcm_tensor::ops::clip_norm(&mut grads, self.grad_clip);
            fedwcm_nn::opt::sgd_step(model.params_mut(), &grads, cfg.local_lr);
        }

        let scale = 1.0 / (cfg.local_lr * total_steps as f32);
        let delta: Vec<f32> = global
            .iter()
            .zip(model.params())
            .map(|(g, p)| (g - p) * scale)
            .collect();
        ClientUpdate {
            client: env.id,
            delta,
            num_samples: env.view.len(),
            num_batches: total_steps,
            avg_loss: (loss_acc / total_steps as f64) as f32,
            extra: None,
        }
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        let mut dir = vec![0.0f32; global.len()];
        uniform_average(&input.updates, &mut dir);
        server_step(global, &dir, input.cfg, input.mean_batches());
        RoundLog::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedwcm_data::longtail::longtail_counts;
    use fedwcm_data::partition::paper_partition;
    use fedwcm_data::synth::DatasetPreset;
    use fedwcm_fl::{FlConfig, Simulation};
    use fedwcm_nn::models::mlp;
    use fedwcm_stats::Xoshiro256pp;

    fn run_task(imb: f64, seed: u64, lambda: f32) -> f64 {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 70, imb);
        let train = spec.generate_train(&counts, seed);
        let test = spec.generate_test(seed);
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 8;
        cfg.participation = 0.5;
        cfg.rounds = 12;
        cfg.local_epochs = 2;
        cfg.batch_size = 20;
        cfg.eval_every = 4;
        cfg.seed = seed;
        let part = paper_partition(&train, cfg.clients, 0.3, cfg.seed);
        let views = part.views(&train);
        let sim = Simulation::new(
            cfg,
            &train,
            &test,
            views,
            Box::new(|| {
                let mut rng = Xoshiro256pp::seed_from(2024);
                mlp(64, &[32], 10, &mut rng)
            }),
        );
        sim.run(&mut BalanceFl::with_lambda(lambda))
            .final_accuracy(1)
    }

    #[test]
    fn learns_longtail_task() {
        let acc = run_task(0.1, 111, 1.0);
        assert!(acc > 0.35, "acc {acc}");
    }

    #[test]
    fn learns_balanced_task() {
        let acc = run_task(1.0, 112, 1.0);
        assert!(acc > 0.5, "acc {acc}");
    }

    #[test]
    fn inheritance_changes_trajectory_under_skew() {
        // With strong class skew some clients miss classes entirely, so
        // λ=0 vs λ=5 must diverge.
        let with_inherit = run_task(0.1, 113, 5.0);
        let without = run_task(0.1, 113, 0.0);
        assert_ne!(with_inherit, without);
    }
}
