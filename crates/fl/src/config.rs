//! Simulation configuration.

use crate::cadence::Cadence;

/// Hyper-parameters of a federated simulation, mirroring the paper's
/// experimental setup section (§7.1).
#[derive(Clone, Debug)]
pub struct FlConfig {
    /// Total number of clients `K` (paper default 100; 40 for the
    /// 100-class presets).
    pub clients: usize,
    /// Fraction of clients sampled per round (paper default 0.1).
    pub participation: f64,
    /// Communication rounds `R`.
    pub rounds: usize,
    /// Local epochs per round (paper default 5).
    pub local_epochs: usize,
    /// Mini-batch size (paper default 50).
    pub batch_size: usize,
    /// Local learning rate `η_l` (paper default 0.1).
    pub local_lr: f32,
    /// Global learning rate `η_g` (paper default 1).
    pub global_lr: f32,
    /// Base experiment seed; every stochastic stream derives from it.
    pub seed: u64,
    /// Worker threads for parallel client training (0 = auto).
    pub threads: usize,
    /// Evaluate on the test set every `eval_every` rounds (and at the end).
    pub eval_every: usize,
    /// Containment threshold: a (gradient-scale) client delta whose norm
    /// reaches this is treated as a diverged client and dropped. Healthy
    /// deltas have single-digit norms; the default `1e6` only triggers on
    /// true blow-ups. Fault experiments tighten/loosen it per run.
    pub max_update_norm: f32,
    /// Minimum fraction of the round's sampled clients that must report a
    /// healthy update for aggregation to proceed. Below quorum the round
    /// skips the momentum update (clients keep reusing the previous
    /// direction) instead of aggregating a biased sample. `0.0` disables
    /// the rule (any non-empty round aggregates, the pre-fault behaviour).
    ///
    /// Quorum rule: only **this round's fresh healthy uploads** count
    /// toward the numerator — late-merged straggler uploads from earlier
    /// cohorts never do, so a round can't pass quorum purely on stale
    /// arrivals while zero sampled clients reported. The denominator is
    /// the round's sampled cohort size. On a quorum-failed round, late
    /// arrivals are re-queued (staleness bumped) rather than discarded.
    /// The rule applies to the [`Cadence::Sync`] barrier only; buffered
    /// and async cadences gate on buffer occupancy instead.
    pub quorum_frac: f64,
    /// Server aggregation cadence: when accumulated uploads are applied
    /// to the global model. [`Cadence::Sync`] (the default) is the
    /// classic one-barrier-per-round loop; see [`Cadence`] for the
    /// buffered and asynchronous alternatives.
    pub cadence: Cadence,
}

impl FlConfig {
    /// Paper-style defaults scaled for CPU simulation.
    pub fn default_sim() -> Self {
        FlConfig {
            clients: 20,
            participation: 0.25,
            rounds: 40,
            local_epochs: 2,
            batch_size: 20,
            local_lr: 0.1,
            global_lr: 1.0,
            seed: 42,
            threads: 0,
            eval_every: 5,
            max_update_norm: 1e6,
            quorum_frac: 0.0,
            cadence: Cadence::Sync,
        }
    }

    /// Number of clients sampled each round (at least one).
    pub fn sampled_per_round(&self) -> usize {
        assert!(
            self.participation > 0.0 && self.participation <= 1.0,
            "participation must be in (0,1], got {}",
            self.participation
        );
        ((self.clients as f64 * self.participation).round() as usize).clamp(1, self.clients)
    }

    /// Resolved worker-thread count.
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            fedwcm_parallel::default_threads()
        } else {
            self.threads
        }
    }

    /// Validate invariants; panics with context on misconfiguration.
    pub fn validate(&self) {
        assert!(self.clients >= 1, "need at least one client");
        assert!(self.rounds >= 1, "need at least one round");
        assert!(self.local_epochs >= 1, "need at least one local epoch");
        assert!(self.batch_size >= 1, "need a positive batch size");
        assert!(
            self.local_lr > 0.0 && self.global_lr > 0.0,
            "learning rates must be positive"
        );
        assert!(self.eval_every >= 1, "eval_every must be ≥ 1");
        assert!(
            self.max_update_norm > 0.0,
            "max_update_norm must be positive, got {}",
            self.max_update_norm
        );
        assert!(
            (0.0..=1.0).contains(&self.quorum_frac),
            "quorum_frac must be in [0,1], got {}",
            self.quorum_frac
        );
        self.cadence.validate();
        let _ = self.sampled_per_round();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_per_round_rounds_and_clamps() {
        let mut cfg = FlConfig::default_sim();
        cfg.clients = 100;
        cfg.participation = 0.1;
        assert_eq!(cfg.sampled_per_round(), 10);
        cfg.participation = 0.001;
        assert_eq!(cfg.sampled_per_round(), 1);
        cfg.participation = 1.0;
        assert_eq!(cfg.sampled_per_round(), 100);
    }

    #[test]
    fn default_config_is_valid() {
        FlConfig::default_sim().validate();
    }

    #[test]
    #[should_panic]
    fn zero_participation_rejected() {
        let mut cfg = FlConfig::default_sim();
        cfg.participation = 0.0;
        let _ = cfg.sampled_per_round();
    }

    #[test]
    #[should_panic]
    fn nonpositive_containment_threshold_rejected() {
        let mut cfg = FlConfig::default_sim();
        cfg.max_update_norm = 0.0;
        cfg.validate();
    }

    #[test]
    #[should_panic]
    fn quorum_above_one_rejected() {
        let mut cfg = FlConfig::default_sim();
        cfg.quorum_frac = 1.5;
        cfg.validate();
    }
}
