//! Layer-boundary checks under the `debug_invariants` feature: a NaN fed
//! into (or produced inside) a model is caught at the first layer
//! boundary it crosses, with the layer named in the panic; release
//! builds run the same inputs without any checking overhead or panic.

use fedwcm_nn::models::mlp;
use fedwcm_stats::rng::Xoshiro256pp;
use fedwcm_tensor::{invariants, Tensor};

fn tiny_mlp() -> fedwcm_nn::model::Model {
    let mut rng = Xoshiro256pp::seed_from(7);
    mlp(4, &[8], 3, &mut rng)
}

#[test]
fn enabled_flag_reflects_build() {
    assert_eq!(invariants::ENABLED, cfg!(feature = "debug_invariants"));
}

#[cfg(feature = "debug_invariants")]
mod enabled {
    use super::*;

    fn panic_message(err: Box<dyn std::any::Any + Send>) -> String {
        err.downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload should be a string")
    }

    #[test]
    fn nan_input_caught_before_the_first_layer() {
        let mut m = tiny_mlp();
        let x = Tensor::from_vec(vec![0.1, f32::NAN, 0.3, 0.4], &[1, 4]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.forward(&x, false)))
            .expect_err("NaN input must trip the invariant");
        let msg = panic_message(err);
        assert!(msg.contains("forward input"), "{msg}");
    }

    #[test]
    fn nan_parameter_blamed_on_its_layer() {
        let mut m = tiny_mlp();
        // Corrupt a first-layer weight: the NaN surfaces in that layer's
        // output and the panic must blame layer 0, not a later one.
        m.params_mut()[0] = f32::NAN;
        let x = Tensor::from_vec(vec![1.0, 1.0, 1.0, 1.0], &[1, 4]);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.forward(&x, false)))
            .expect_err("NaN weight must trip the invariant");
        let msg = panic_message(err);
        assert!(msg.contains("layer 0"), "{msg}");
        assert!(msg.contains("dense"), "{msg}");
    }

    #[test]
    fn nan_logits_gradient_caught_entering_backward() {
        let mut m = tiny_mlp();
        let x = Tensor::from_vec(vec![0.5; 4], &[1, 4]);
        let _ = m.forward(&x, true);
        let g = Tensor::from_vec(vec![0.1, f32::INFINITY, -0.1], &[1, 3]);
        let mut grads = vec![0.0; m.param_len()];
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| m.backward(&g, &mut grads)))
                .expect_err("non-finite gradient must trip the invariant");
        let msg = panic_message(err);
        assert!(msg.contains("backward"), "{msg}");
    }
}

#[cfg(not(feature = "debug_invariants"))]
mod disabled {
    use super::*;

    #[test]
    fn nan_input_flows_through_unchecked() {
        // Release semantics: garbage in, garbage out — no panic. The FL
        // engine's containment filter is the release-mode safety net.
        let mut m = tiny_mlp();
        let x = Tensor::from_vec(vec![0.1, f32::NAN, 0.3, 0.4], &[1, 4]);
        let logits = m.forward(&x, false);
        assert!(logits.as_slice().iter().any(|v| v.is_nan()));
    }
}
