//! Dataset storage and client-side views.

use fedwcm_tensor::Tensor;

/// An in-memory labelled dataset: features `[n, d]` plus integer labels.
#[derive(Clone, Debug)]
pub struct Dataset {
    features: Tensor,
    labels: Vec<usize>,
    classes: usize,
}

impl Dataset {
    /// Wrap features and labels; validates shapes and label range.
    pub fn new(features: Tensor, labels: Vec<usize>, classes: usize) -> Self {
        assert_eq!(
            features.rows(),
            labels.len(),
            "feature/label count mismatch"
        );
        assert!(classes >= 2, "need at least two classes");
        assert!(labels.iter().all(|&y| y < classes), "label out of range");
        Dataset {
            features,
            labels,
            classes,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.features.cols()
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Label of sample `i`.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature row of sample `i`.
    pub fn feature_row(&self, i: usize) -> &[f32] {
        self.features.row(i)
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.classes];
        for &y in &self.labels {
            counts[y] += 1;
        }
        counts
    }

    /// Per-class proportions (sums to 1; uniform if empty).
    pub fn class_distribution(&self) -> Vec<f64> {
        let counts = self.class_counts();
        let total: usize = counts.iter().sum();
        if total == 0 {
            return vec![1.0 / self.classes as f64; self.classes];
        }
        counts.iter().map(|&c| c as f64 / total as f64).collect()
    }

    /// Materialise a batch `(features, labels)` from sample indices.
    pub fn gather(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let d = self.dim();
        let mut data = Vec::with_capacity(indices.len() * d);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            data.extend_from_slice(self.features.row(i));
            labels.push(self.labels[i]);
        }
        (Tensor::from_vec(data, &[indices.len(), d]), labels)
    }

    /// The whole dataset as one batch.
    pub fn as_batch(&self) -> (Tensor, Vec<usize>) {
        (self.features.clone(), self.labels.clone())
    }

    /// Indices of every sample of class `c`.
    pub fn indices_of_class(&self, c: usize) -> Vec<usize> {
        self.labels
            .iter()
            .enumerate()
            .filter(|&(_, &y)| y == c)
            .map(|(i, _)| i)
            .collect()
    }
}

/// A client's view into the master dataset: the sample indices it owns.
#[derive(Clone, Debug)]
pub struct ClientView {
    indices: Vec<usize>,
    class_counts: Vec<usize>,
}

impl ClientView {
    /// Build a view from owned indices.
    pub fn new(indices: Vec<usize>, dataset: &Dataset) -> Self {
        let mut class_counts = vec![0usize; dataset.classes()];
        for &i in &indices {
            class_counts[dataset.label(i)] += 1;
        }
        ClientView {
            indices,
            class_counts,
        }
    }

    /// Number of samples this client holds (the paper's `n_k`).
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when the client holds no samples.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Owned sample indices into the master dataset.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Per-class counts `n_{k,c}`.
    pub fn class_counts(&self) -> &[usize] {
        &self.class_counts
    }

    /// Per-class proportions (uniform if the client is empty).
    pub fn class_distribution(&self) -> Vec<f64> {
        let total: usize = self.class_counts.iter().sum();
        if total == 0 {
            return vec![1.0 / self.class_counts.len() as f64; self.class_counts.len()];
        }
        self.class_counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0], &[4, 2]);
        Dataset::new(x, vec![0, 1, 1, 2], 3)
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 4);
        assert_eq!(d.dim(), 2);
        assert_eq!(d.classes(), 3);
        assert_eq!(d.class_counts(), vec![1, 2, 1]);
        assert_eq!(d.feature_row(2), &[4.0, 5.0]);
    }

    #[test]
    fn distribution_sums_to_one() {
        let d = toy();
        let p = d.class_distribution();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(p[1], 0.5);
    }

    #[test]
    fn gather_builds_batches() {
        let d = toy();
        let (x, y) = d.gather(&[3, 0]);
        assert_eq!(x.shape(), &[2, 2]);
        assert_eq!(x.row(0), &[6.0, 7.0]);
        assert_eq!(y, vec![2, 0]);
    }

    #[test]
    fn indices_of_class_filters() {
        let d = toy();
        assert_eq!(d.indices_of_class(1), vec![1, 2]);
        assert_eq!(d.indices_of_class(0), vec![0]);
    }

    #[test]
    fn client_view_counts() {
        let d = toy();
        let v = ClientView::new(vec![1, 2, 3], &d);
        assert_eq!(v.len(), 3);
        assert_eq!(v.class_counts(), &[0, 2, 1]);
        let p = v.class_distribution();
        assert!((p[1] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_client_uniform_distribution() {
        let d = toy();
        let v = ClientView::new(vec![], &d);
        assert_eq!(v.class_distribution(), vec![1.0 / 3.0; 3]);
    }

    #[test]
    #[should_panic]
    fn label_out_of_range_rejected() {
        let x = Tensor::zeros(&[1, 2]);
        let _ = Dataset::new(x, vec![5], 3);
    }
}
