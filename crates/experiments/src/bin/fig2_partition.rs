//! Figure 2: client data partition on CIFAR-10 — the FedGrab-style
//! quantity-skewed partition vs the paper's equal-quantity partition,
//! both at β = 0.1, IF = 0.1. Prints the client × class count matrices
//! (the heatmap data) plus skew summaries.

use fedwcm_data::partition::Partition;
use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::{parse_args, ExpConfig};
use fedwcm_stats::describe::gini;

fn print_matrix(name: &str, partition: &Partition, train: &fedwcm_data::Dataset) {
    println!("\n## {name} (rows = clients, cols = classes)\n");
    let m = partition.counts_matrix(train);
    print!("{:>8}", "client");
    for c in 0..train.classes() {
        print!("{c:>6}");
    }
    println!("{:>8}", "total");
    for (k, row) in m.iter().enumerate() {
        print!("{k:>8}");
        for &n in row {
            print!("{n:>6}");
        }
        println!("{:>8}", row.iter().sum::<usize>());
    }
    let sizes: Vec<f64> = partition.client_sizes().iter().map(|&s| s as f64).collect();
    println!("\nquantity Gini = {:.3}", gini(&sizes));
}

fn main() {
    let cli = parse_args(std::env::args());
    let mut exp = ExpConfig::new(DatasetPreset::Cifar10, 0.1, 0.1, cli.scale, cli.seed);
    exp.clients = exp.clients.min(20); // heatmap stays readable

    let equal = exp.prepare();
    print_matrix(
        "Paper partition (equal quantity, Dir(0.1) class skew)",
        &equal.partition,
        &equal.train,
    );

    let mut skewed_exp = exp.clone();
    skewed_exp.fedgrab_partition = true;
    let skewed = skewed_exp.prepare();
    print_matrix(
        "FedGrab partition (per-class Dir(0.1) split)",
        &skewed.partition,
        &skewed.train,
    );

    println!(
        "\nExpected shape (paper Fig. 2): the FedGrab partition shows strong\n\
         quantity skew (high Gini); ours keeps client totals nearly equal."
    );
}
