//! Cross-crate integration tests: the full pipeline from synthetic data
//! through partitioning, federated training, and evaluation.

use fedwcm_suite::prelude::*;

fn task(imbalance: f64, beta: f64, seed: u64) -> (Dataset, Dataset, FlConfig) {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 80, imbalance);
    let train = spec.generate_train(&counts, seed);
    let test = spec.generate_test(seed);
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 10;
    cfg.participation = 0.4;
    cfg.rounds = 25;
    cfg.local_epochs = 2;
    cfg.batch_size = 20;
    cfg.eval_every = 5;
    cfg.seed = seed;
    let _ = beta;
    (train, test, cfg)
}

fn sim<'a>(train: &'a Dataset, test: &'a Dataset, cfg: &FlConfig, beta: f64) -> Simulation<'a> {
    let views = paper_partition(train, cfg.clients, beta, cfg.seed).views(train);
    Simulation::new(
        cfg.clone(),
        train,
        test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(31337);
            fedwcm_suite::nn::models::mlp(64, &[48], 10, &mut rng)
        }),
    )
}

#[test]
fn fedwcm_beats_fedcm_under_longtail() {
    // The paper's headline claim, end to end on the real pipeline.
    let (train, test, cfg) = task(0.05, 0.3, 1001);
    let s = sim(&train, &test, &cfg, 0.3);
    let wcm = s.run(&mut FedWcm::new()).final_accuracy(3);
    let cm = s.run(&mut FedCm::new(0.1)).final_accuracy(3);
    assert!(
        wcm > cm,
        "FedWCM ({wcm:.4}) must beat FedCM ({cm:.4}) at IF=0.05"
    );
}

#[test]
fn fedwcm_competitive_when_balanced() {
    // No long tail: FedWCM must not lose materially to FedAvg (its α
    // stays at the FedCM base and weighting is near-uniform).
    let (train, test, cfg) = task(1.0, 0.3, 1002);
    let s = sim(&train, &test, &cfg, 0.3);
    let wcm = s.run(&mut FedWcm::new()).final_accuracy(3);
    let avg = s.run(&mut FedAvg::new()).final_accuracy(3);
    assert!(
        wcm > avg - 0.05,
        "FedWCM ({wcm:.4}) must stay within 5pts of FedAvg ({avg:.4}) when balanced"
    );
}

#[test]
fn full_run_deterministic_across_thread_env() {
    let (train, test, cfg) = task(0.1, 0.3, 1003);
    let s = sim(&train, &test, &cfg, 0.3);
    let h1 = s.run(&mut FedWcm::new());
    let h2 = s.run(&mut FedWcm::new());
    for (a, b) in h1.records.iter().zip(&h2.records) {
        assert_eq!(a.train_loss, b.train_loss);
        assert_eq!(a.test_acc, b.test_acc);
        assert_eq!(a.alpha, b.alpha);
    }
}

#[test]
fn all_main_methods_produce_finite_trajectories() {
    let (train, test, mut cfg) = task(0.1, 0.3, 1004);
    cfg.rounds = 6;
    let s = sim(&train, &test, &cfg, 0.3);
    let algos: Vec<Box<dyn FederatedAlgorithm>> = vec![
        Box::new(FedAvg::new()),
        Box::new(FedCm::new(0.1)),
        Box::new(FedWcm::new()),
        Box::new(BalanceFl::new()),
        Box::new(FedGrab::new(train.class_counts())),
        Box::new(FedProx::new(0.01)),
        Box::new(Scaffold::new(10)),
    ];
    for mut algo in algos {
        let h = s.run(algo.as_mut());
        assert_eq!(h.records.len(), 6, "{}", h.name);
        for r in &h.records {
            assert!(
                r.train_loss.expect("every round reported").is_finite(),
                "{} loss diverged",
                h.name
            );
            assert!(r.update_norm.is_finite(), "{} update diverged", h.name);
        }
    }
}

#[test]
fn fedwcm_x_handles_quantity_skew() {
    let (train, test, cfg) = task(0.1, 0.3, 1005);
    let views = fedgrab_partition(&train, cfg.clients, 0.3, cfg.seed).views(&train);
    let s = Simulation::new(
        cfg.clone(),
        &train,
        &test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(31337);
            fedwcm_suite::nn::models::mlp(64, &[48], 10, &mut rng)
        }),
    );
    let b_hat =
        FedWcmX::standard_batches_for(train.len(), cfg.clients, cfg.batch_size, cfg.local_epochs);
    let h = s.run(&mut FedWcmX::new(b_hat));
    assert!(
        h.final_accuracy(3) > 0.3,
        "FedWCM-X acc {}",
        h.final_accuracy(3)
    );
}
