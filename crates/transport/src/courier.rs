//! The delivery state machine: drives one upload across a lossy
//! [`Link`] under a [`RetryPolicy`] until it is acknowledged, delayed,
//! or out of budget.
//!
//! One [`Courier`] serves one round of deliveries in a fixed order. Its
//! logical clock ticks once per waiting step, so the entire retry
//! timeline — deadlines, backoff pauses, which reordered frame lands in
//! which window — is a deterministic function of the plan seed and the
//! delivery order, independent of thread count. The reverse control
//! channel (Acks and Nacks back to the sender) is modelled as lossless:
//! control frames still pass through the codec, but are never faulted.
//! Real deployments achieve the same effect by making acks idempotent
//! and retrying them on the data channel's cadence; modelling that
//! asymmetry keeps the state machine focused on the lossy data path.

use crate::frame::{self, FrameError, Message, NackReason};
use crate::link::{FrameCtx, InMemoryLink, Link};
use crate::plan::{NetFault, NetPlan};
use crate::retry::RetryPolicy;
use fedwcm_trace::{Clock, LogicalClock};

/// Runtime transport counters, merged into round records and reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetCounters {
    /// Data frames transmitted (first sends and retries).
    pub frames_sent: u64,
    /// Re-transmissions after a Nack or deadline expiry.
    pub retries: u64,
    /// Frames the receiver rejected (checksum mismatch or malformed).
    pub rejected_frames: u64,
    /// Redundant intact arrivals discarded after a delivery completed.
    pub duplicates: u64,
    /// Deliveries deferred whole rounds by a [`NetFault::Delay`].
    pub delayed: u64,
    /// Deliveries that exhausted their retry budget and degraded into
    /// the engine's dropout machinery.
    pub degraded: u64,
    /// Bytes re-transmitted (the wire cost of retries).
    pub retransmitted_bytes: u64,
    /// Bytes arriving in rejected frames.
    pub rejected_bytes: u64,
}

impl NetCounters {
    /// Accumulate `other` into `self` (saturating).
    pub fn merge(&mut self, other: &NetCounters) {
        self.frames_sent = self.frames_sent.saturating_add(other.frames_sent);
        self.retries = self.retries.saturating_add(other.retries);
        self.rejected_frames = self.rejected_frames.saturating_add(other.rejected_frames);
        self.duplicates = self.duplicates.saturating_add(other.duplicates);
        self.delayed = self.delayed.saturating_add(other.delayed);
        self.degraded = self.degraded.saturating_add(other.degraded);
        self.retransmitted_bytes = self
            .retransmitted_bytes
            .saturating_add(other.retransmitted_bytes);
        self.rejected_bytes = self.rejected_bytes.saturating_add(other.rejected_bytes);
    }

    /// True when no transport activity was recorded at all.
    pub fn is_zero(&self) -> bool {
        *self == NetCounters::default()
    }
}

/// How one transmission attempt ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The receiver acknowledged an intact frame.
    Acked,
    /// The receiver rejected the frame for the given reason.
    Nacked(NackReason),
    /// No reply inside the attempt's deadline.
    TimedOut,
    /// The plan deferred the whole delivery by `rounds` rounds.
    Delayed {
        /// Rounds of deferral.
        rounds: usize,
    },
}

impl AttemptOutcome {
    /// Short static label for trace points.
    pub fn label(&self) -> &'static str {
        match self {
            AttemptOutcome::Acked => "acked",
            AttemptOutcome::Nacked(NackReason::Checksum) => "nack_checksum",
            AttemptOutcome::Nacked(NackReason::Malformed) => "nack_malformed",
            AttemptOutcome::TimedOut => "timeout",
            AttemptOutcome::Delayed { .. } => "delayed",
        }
    }
}

/// The final fate of one delivery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The upload arrived intact and was acknowledged.
    Delivered {
        /// The payload exactly as the receiver decoded it.
        payload: Vec<u8>,
    },
    /// The upload will arrive `rounds` rounds late, intact — the
    /// engine's straggler machinery takes over.
    Delayed {
        /// Rounds of lateness.
        rounds: usize,
    },
    /// The retry budget ran out — the engine's dropout machinery takes
    /// over.
    Exhausted,
}

/// One delivery's result: verdict, transmission count, attempt log.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// Final fate of the upload.
    pub verdict: Verdict,
    /// Data frames actually transmitted for this delivery.
    pub attempts: u32,
    /// Per-attempt outcomes in order (the trace of the state machine).
    pub log: Vec<AttemptOutcome>,
}

/// Drives deliveries for one round over a fresh in-memory link each.
pub struct Courier<'p> {
    plan: &'p NetPlan,
    policy: RetryPolicy,
    clock: LogicalClock,
    counters: NetCounters,
}

/// The lossless reverse control channel: encode and decode the control
/// message so acknowledgements exercise the codec too.
fn control_reply(msg: &Message) -> Option<Message> {
    frame::decode(&frame::encode(msg).ok()?).ok()
}

impl<'p> Courier<'p> {
    /// A courier over `plan` under `policy`, its clock resuming at
    /// `start_tick` (0 for a fresh run; the checkpointed tick when
    /// resuming).
    pub fn new(plan: &'p NetPlan, policy: RetryPolicy, start_tick: u64) -> Self {
        policy.validate();
        Courier {
            plan,
            policy,
            clock: LogicalClock::starting_at(start_tick),
            counters: NetCounters::default(),
        }
    }

    /// The courier clock's current tick (checkpointed as `net_ticks`).
    pub fn ticks(&self) -> u64 {
        self.clock.current()
    }

    /// Counters accumulated across this courier's deliveries so far.
    pub fn counters(&self) -> NetCounters {
        self.counters
    }

    /// Deliver `payload` as client `client`'s upload for `round` under
    /// sequence number `seq`, retrying per the policy.
    pub fn deliver(&mut self, round: u64, client: u64, seq: u64, payload: &[u8]) -> Delivery {
        let mut link = InMemoryLink::new(self.plan.clone());
        let mut log: Vec<AttemptOutcome> = Vec::new();
        let mut attempt: u32 = 0;
        loop {
            // A Delay fault defers the whole delivery intact: no frame
            // is transmitted, the engine buffers the update as a late
            // arrival.
            if let Some(NetFault::Delay { rounds }) =
                self.plan.net_fault_for(round, client, attempt)
            {
                self.counters.delayed = self.counters.delayed.saturating_add(1);
                log.push(AttemptOutcome::Delayed { rounds });
                return Delivery {
                    verdict: Verdict::Delayed { rounds },
                    attempts: attempt,
                    log,
                };
            }
            let msg = Message::DeltaUp {
                seq,
                payload: payload.to_vec(),
            };
            let Ok(bytes) = frame::encode(&msg) else {
                // Payload over the frame cap: unrecoverable by retrying.
                self.counters.degraded = self.counters.degraded.saturating_add(1);
                log.push(AttemptOutcome::TimedOut);
                return Delivery {
                    verdict: Verdict::Exhausted,
                    attempts: attempt,
                    log,
                };
            };
            self.counters.frames_sent = self.counters.frames_sent.saturating_add(1);
            if attempt > 0 {
                self.counters.retries = self.counters.retries.saturating_add(1);
                self.counters.retransmitted_bytes = self
                    .counters
                    .retransmitted_bytes
                    .saturating_add(bytes.len() as u64);
            }
            link.send(
                FrameCtx {
                    round,
                    client,
                    attempt,
                },
                bytes,
            );
            // Wait out the attempt deadline, draining the link each tick.
            let deadline = self
                .clock
                .current()
                .saturating_add(self.policy.deadline_ticks);
            let mut reply: Option<Result<Vec<u8>, NackReason>> = None;
            while self.clock.current() < deadline && reply.is_none() {
                self.clock.tick();
                link.tick();
                reply = self.drain(&mut link, seq);
            }
            match reply {
                Some(Ok(payload)) => {
                    log.push(AttemptOutcome::Acked);
                    return Delivery {
                        verdict: Verdict::Delivered { payload },
                        attempts: attempt + 1,
                        log,
                    };
                }
                Some(Err(reason)) => log.push(AttemptOutcome::Nacked(reason)),
                None => log.push(AttemptOutcome::TimedOut),
            }
            attempt += 1;
            if attempt >= self.policy.max_attempts {
                self.counters.degraded = self.counters.degraded.saturating_add(1);
                return Delivery {
                    verdict: Verdict::Exhausted,
                    attempts: attempt,
                    log,
                };
            }
            // Back off before re-sending, still draining: a reordered
            // frame can land during the pause and complete the delivery
            // without another transmission.
            let pause =
                self.policy
                    .backoff_ticks(self.plan.config().seed, round, client, attempt - 1);
            for _ in 0..pause {
                self.clock.tick();
                link.tick();
                if let Some(Ok(payload)) = self.drain(&mut link, seq) {
                    log.push(AttemptOutcome::Acked);
                    return Delivery {
                        verdict: Verdict::Delivered { payload },
                        attempts: attempt,
                        log,
                    };
                }
            }
        }
    }

    /// Receive everything due on the link: the first intact matching
    /// frame is acknowledged and returned; damaged frames are Nacked and
    /// counted; redundant intact frames are counted as duplicates.
    fn drain(&mut self, link: &mut InMemoryLink, seq: u64) -> Option<Result<Vec<u8>, NackReason>> {
        let mut outcome: Option<Result<Vec<u8>, NackReason>> = None;
        for raw in link.poll() {
            match frame::decode(&raw) {
                Ok(Message::DeltaUp { seq: got, payload }) if got == seq && outcome.is_none() => {
                    let ack = control_reply(&Message::Ack { seq });
                    debug_assert!(matches!(ack, Some(Message::Ack { .. })));
                    outcome = Some(Ok(payload));
                }
                Ok(_) => {
                    self.counters.duplicates = self.counters.duplicates.saturating_add(1);
                }
                Err(e) => {
                    self.counters.rejected_frames = self.counters.rejected_frames.saturating_add(1);
                    self.counters.rejected_bytes = self
                        .counters
                        .rejected_bytes
                        .saturating_add(raw.len() as u64);
                    let reason = if e == FrameError::ChecksumMismatch {
                        NackReason::Checksum
                    } else {
                        NackReason::Malformed
                    };
                    if outcome.is_none() {
                        let nack = control_reply(&Message::Nack { seq, reason });
                        debug_assert!(matches!(nack, Some(Message::Nack { .. })));
                        outcome = Some(Err(reason));
                    }
                }
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::NetConfig;

    fn deliver_one(plan: &NetPlan, round: u64, client: u64) -> (Delivery, NetCounters) {
        let mut courier = Courier::new(plan, RetryPolicy::default(), 0);
        let d = courier.deliver(round, client, 77, &[1, 2, 3, 4]);
        (d, courier.counters())
    }

    #[test]
    fn clean_link_delivers_first_try() {
        let plan = NetPlan::zero(1);
        let (d, c) = deliver_one(&plan, 0, 0);
        assert_eq!(
            d.verdict,
            Verdict::Delivered {
                payload: vec![1, 2, 3, 4]
            }
        );
        assert_eq!(d.attempts, 1);
        assert_eq!(d.log, vec![AttemptOutcome::Acked]);
        assert_eq!(c.frames_sent, 1);
        assert_eq!(c.retries, 0);
        assert!(c.retransmitted_bytes == 0 && c.rejected_bytes == 0);
    }

    #[test]
    fn dropped_frame_is_retried_to_delivery() {
        let plan = NetPlan::new(NetConfig {
            drop: 0.5,
            ..NetConfig::zero(5)
        });
        // Find a client whose attempt 0 drops but attempt 1 succeeds.
        let client = (0..256u64)
            .find(|&c| {
                plan.net_fault_for(0, c, 0) == Some(NetFault::Drop)
                    && plan.net_fault_for(0, c, 1).is_none()
            })
            .expect("such a client exists");
        let (d, c) = deliver_one(&plan, 0, client);
        assert_eq!(
            d.verdict,
            Verdict::Delivered {
                payload: vec![1, 2, 3, 4]
            }
        );
        assert_eq!(d.attempts, 2);
        assert_eq!(d.log, vec![AttemptOutcome::TimedOut, AttemptOutcome::Acked]);
        assert_eq!(c.retries, 1);
        assert!(c.retransmitted_bytes > 0);
    }

    #[test]
    fn corrupted_frame_is_nacked_and_retried() {
        let plan = NetPlan::new(NetConfig {
            corrupt: 0.5,
            ..NetConfig::zero(6)
        });
        let client = (0..256u64)
            .find(|&c| {
                matches!(plan.net_fault_for(0, c, 0), Some(NetFault::Corrupt { .. }))
                    && plan.net_fault_for(0, c, 1).is_none()
            })
            .expect("such a client exists");
        let (d, c) = deliver_one(&plan, 0, client);
        assert_eq!(
            d.verdict,
            Verdict::Delivered {
                payload: vec![1, 2, 3, 4]
            }
        );
        assert_eq!(d.log.len(), 2);
        assert!(matches!(d.log[0], AttemptOutcome::Nacked(_)));
        assert_eq!(c.rejected_frames, 1);
        assert!(c.rejected_bytes > 0);
    }

    #[test]
    fn total_loss_exhausts_the_budget() {
        let plan = NetPlan::new(NetConfig {
            drop: 1.0,
            ..NetConfig::zero(7)
        });
        let (d, c) = deliver_one(&plan, 3, 9);
        assert_eq!(d.verdict, Verdict::Exhausted);
        assert_eq!(d.attempts, RetryPolicy::default().max_attempts);
        assert!(d.log.iter().all(|o| *o == AttemptOutcome::TimedOut));
        assert_eq!(c.degraded, 1);
        assert_eq!(
            c.frames_sent,
            u64::from(RetryPolicy::default().max_attempts)
        );
    }

    #[test]
    fn delay_defers_the_whole_delivery() {
        let plan = NetPlan::new(NetConfig {
            delay: 1.0,
            max_delay_rounds: 2,
            ..NetConfig::zero(8)
        });
        let (d, c) = deliver_one(&plan, 0, 0);
        match d.verdict {
            Verdict::Delayed { rounds } => assert!((1..=2).contains(&rounds)),
            other => panic!("expected a delay, got {other:?}"),
        }
        assert_eq!(d.attempts, 0, "nothing was transmitted");
        assert_eq!(c.frames_sent, 0);
        assert_eq!(c.delayed, 1);
    }

    #[test]
    fn duplicates_are_counted_not_double_delivered() {
        let plan = NetPlan::new(NetConfig {
            duplicate: 1.0,
            ..NetConfig::zero(9)
        });
        let (d, c) = deliver_one(&plan, 0, 0);
        assert!(matches!(d.verdict, Verdict::Delivered { .. }));
        assert_eq!(c.duplicates, 1);
    }

    #[test]
    fn deliveries_are_bitwise_reproducible() {
        let plan = NetPlan::new(NetConfig {
            drop: 0.2,
            corrupt: 0.1,
            duplicate: 0.1,
            reorder: 0.1,
            delay: 0.1,
            max_delay_rounds: 2,
            ..NetConfig::zero(10)
        });
        let run = || {
            let mut courier = Courier::new(&plan, RetryPolicy::default(), 0);
            let deliveries: Vec<Delivery> = (0..40u64)
                .map(|c| courier.deliver(0, c, c, &[9, 9, 9]))
                .collect();
            (deliveries, courier.counters(), courier.ticks())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn counters_merge_saturating() {
        let mut a = NetCounters {
            retransmitted_bytes: u64::MAX,
            ..NetCounters::default()
        };
        let b = NetCounters {
            retransmitted_bytes: 5,
            frames_sent: 2,
            ..NetCounters::default()
        };
        a.merge(&b);
        assert_eq!(a.retransmitted_bytes, u64::MAX);
        assert_eq!(a.frames_sent, 2);
        assert!(!a.is_zero());
        assert!(NetCounters::default().is_zero());
    }
}
