//! Extending the framework: implement a custom federated algorithm
//! against the `FederatedAlgorithm` trait and benchmark it in-place.
//!
//! The example builds "FedWCM-Lite": score-weighted aggregation (Eq. 4)
//! without the adaptive momentum, on top of plain local SGD — showing how
//! the library's pieces (scores, weights, engine hooks) compose.
//!
//! ```sh
//! cargo run --release --example custom_algorithm
//! ```

use fedwcm_suite::core::{aggregation_weights, client_scores, global_distribution, temperature};
use fedwcm_suite::fl::algorithm::{server_step, weighted_average, RoundInput, RoundLog};
use fedwcm_suite::fl::client::{run_local_sgd, ClientEnv, ClientUpdate, LocalSgdSpec};
use fedwcm_suite::nn::loss::CrossEntropy;
use fedwcm_suite::prelude::*;

/// Score-weighted FedAvg: Eq. (3)/(4) weighting, no momentum.
struct WeightedFedAvg {
    scores: Vec<f64>,
    temp: f64,
    prepared: bool,
}

impl WeightedFedAvg {
    fn new() -> Self {
        WeightedFedAvg {
            scores: Vec::new(),
            temp: 1.0,
            prepared: false,
        }
    }
}

impl FederatedAlgorithm for WeightedFedAvg {
    fn name(&self) -> String {
        "WeightedFedAvg".into()
    }

    fn local_train(&self, env: &ClientEnv<'_>, global: &[f32]) -> ClientUpdate {
        let spec = LocalSgdSpec {
            loss: &CrossEntropy,
            balanced_sampler: false,
            lr: env.cfg.local_lr,
            epochs: env.cfg.local_epochs,
        };
        // Identity direction transform = plain local SGD.
        run_local_sgd(env, global, &spec, |_, _, _| {})
    }

    fn aggregate(&mut self, global: &mut [f32], input: &RoundInput<'_>) -> RoundLog {
        if !self.prepared {
            let classes = input.views[0].class_counts().len();
            let dist = global_distribution(input.views, classes);
            let target = vec![1.0 / classes as f64; classes];
            self.scores = client_scores(input.views, &dist, &target);
            self.temp = temperature(&dist, &target);
            self.prepared = true;
        }
        let sampled: Vec<f64> = input
            .updates
            .iter()
            .map(|u| self.scores[u.client])
            .collect();
        let w = aggregation_weights(&sampled, self.temp);
        let mut dir = vec![0.0f32; global.len()];
        weighted_average(&input.updates, &w, &mut dir);
        server_step(global, &dir, input.cfg, input.mean_batches());
        RoundLog {
            alpha: None,
            weights: Some(w),
        }
    }
}

fn main() {
    let spec = DatasetPreset::FashionMnist.spec();
    let counts = longtail_counts(10, 150, 0.05);
    let train = spec.generate_train(&counts, 11);
    let test = spec.generate_test(11);
    let mut cfg = FlConfig::default_sim();
    cfg.clients = 10;
    cfg.participation = 0.4;
    cfg.rounds = 30;
    cfg.eval_every = 6;
    let views = paper_partition(&train, cfg.clients, 0.3, cfg.seed).views(&train);
    let sim = Simulation::new(
        cfg,
        &train,
        &test,
        views,
        Box::new(|| {
            let mut rng = Xoshiro256pp::seed_from(5);
            fedwcm_suite::nn::models::mlp(64, &[64], 10, &mut rng)
        }),
    );

    for algo in [
        Box::new(FedAvg::new()) as Box<dyn FederatedAlgorithm>,
        Box::new(WeightedFedAvg::new()),
        Box::new(FedWcm::new()),
    ] {
        let mut algo = algo;
        let h = sim.run(algo.as_mut());
        println!("{:<16} final accuracy {:.4}", h.name, h.final_accuracy(3));
    }
    println!("\nWeightedFedAvg isolates Eq. (4)'s contribution; FedWCM adds\nthe adaptive momentum on top.");
}
