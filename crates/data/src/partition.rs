//! Federated data partitioners.
//!
//! Two schemes from the paper:
//!
//! * [`paper_partition`] — the partition used in the main experiments
//!   (following BalanceFL): every client holds (nearly) the **same number
//!   of samples**, with class proportions skewed by `Dir(β)`, while the
//!   per-class totals follow the global long-tail profile. Realised by
//!   iterative proportional fitting of the Dirichlet draws to both
//!   marginals, then exact integer rounding on the class marginal.
//! * [`fedgrab_partition`] — the Appendix-A partition (following FedGrab):
//!   each class is split across clients by an independent `Dir(β)` draw,
//!   which produces strong *quantity* skew (a few clients hold most data).

use crate::dataset::{ClientView, Dataset};
use fedwcm_stats::dist::Dirichlet;
use fedwcm_stats::rng::{Rng, Xoshiro256pp};

/// The result of a partition: each client's sample indices into the master
/// dataset.
#[derive(Clone, Debug)]
pub struct Partition {
    client_indices: Vec<Vec<usize>>,
}

impl Partition {
    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.client_indices.len()
    }

    /// Sample indices owned by client `k`.
    pub fn client(&self, k: usize) -> &[usize] {
        &self.client_indices[k]
    }

    /// Per-client sample counts (`n_k`).
    pub fn client_sizes(&self) -> Vec<usize> {
        self.client_indices.iter().map(Vec::len).collect()
    }

    /// Materialise [`ClientView`]s against the master dataset.
    pub fn views(&self, dataset: &Dataset) -> Vec<ClientView> {
        self.client_indices
            .iter()
            .map(|idx| ClientView::new(idx.clone(), dataset))
            .collect()
    }

    /// Client × class count matrix.
    pub fn counts_matrix(&self, dataset: &Dataset) -> Vec<Vec<usize>> {
        self.client_indices
            .iter()
            .map(|idx| {
                let mut counts = vec![0usize; dataset.classes()];
                for &i in idx {
                    counts[dataset.label(i)] += 1;
                }
                counts
            })
            .collect()
    }
}

/// Integer-round a non-negative real vector to sum exactly to `target`
/// using the largest-remainder method.
fn round_to_sum(values: &[f64], target: usize) -> Vec<usize> {
    let total: f64 = values.iter().sum();
    if total <= 0.0 {
        // Degenerate: spread uniformly.
        let mut out = vec![target / values.len().max(1); values.len()];
        let mut rem = target - out.iter().sum::<usize>();
        for o in out.iter_mut() {
            if rem == 0 {
                break;
            }
            *o += 1;
            rem -= 1;
        }
        return out;
    }
    let scaled: Vec<f64> = values.iter().map(|&v| v / total * target as f64).collect();
    let mut out: Vec<usize> = scaled.iter().map(|&v| v.floor() as usize).collect();
    let mut rem = target - out.iter().sum::<usize>();
    // Assign leftovers to the largest fractional parts.
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = scaled[a] - scaled[a].floor();
        let fb = scaled[b] - scaled[b].floor();
        fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
    });
    for &i in order.iter().cycle().take(values.len() * 2) {
        if rem == 0 {
            break;
        }
        out[i] += 1;
        rem -= 1;
    }
    out
}

/// The paper's equal-quantity Dirichlet partition.
///
/// * Every client receives `⌊n/K⌋` or `⌈n/K⌉` samples;
/// * per-class totals match the dataset's long-tail counts exactly;
/// * class mixes per client are `Dir(β)`-skewed (smaller β = more skew).
pub fn paper_partition(dataset: &Dataset, clients: usize, beta: f64, seed: u64) -> Partition {
    assert!(clients >= 1, "need at least one client");
    let classes = dataset.classes();
    let class_counts = dataset.class_counts();
    let n = dataset.len();
    assert!(n >= clients, "fewer samples than clients");

    let mut rng = Xoshiro256pp::stream(seed, &[0x9A27, clients as u64, beta.to_bits()]);
    let dir = Dirichlet::symmetric(beta, classes);

    // Raw Dirichlet intent: D[k][c] ∝ client k's preference for class c.
    let mut d: Vec<Vec<f64>> = (0..clients).map(|_| dir.sample(&mut rng)).collect();

    // Target marginals: equal row sums, long-tail column sums.
    let row_target: Vec<f64> = {
        let base = n / clients;
        let extra = n % clients;
        (0..clients)
            .map(|k| (base + usize::from(k < extra)) as f64)
            .collect()
    };
    let col_target: Vec<f64> = class_counts.iter().map(|&c| c as f64).collect();

    // Iterative proportional fitting (raking): alternately scale rows and
    // columns onto their targets. Converges geometrically for positive
    // matrices; Dirichlet draws are strictly positive.
    for _ in 0..50 {
        for (k, row) in d.iter_mut().enumerate() {
            let s: f64 = row.iter().sum();
            if s > 0.0 {
                let f = row_target[k] / s;
                for v in row.iter_mut() {
                    *v *= f;
                }
            }
        }
        for c in 0..classes {
            let s: f64 = d.iter().map(|row| row[c]).sum();
            if s > 0.0 {
                let f = col_target[c] / s;
                for row in d.iter_mut() {
                    row[c] *= f;
                }
            }
        }
    }

    // Exact integer counts per class (columns must match the pools).
    let mut counts = vec![vec![0usize; classes]; clients];
    for c in 0..classes {
        let col: Vec<f64> = d.iter().map(|row| row[c]).collect();
        let alloc = round_to_sum(&col, class_counts[c]);
        for (k, &a) in alloc.iter().enumerate() {
            counts[k][c] = a;
        }
    }

    deal_from_pools(dataset, &counts, &mut rng)
}

/// The FedGrab-style quantity-skewed partition: each class's samples are
/// split across clients by an independent `Dir(β)` draw; clients that end
/// up empty receive one sample from the most abundant class.
pub fn fedgrab_partition(dataset: &Dataset, clients: usize, beta: f64, seed: u64) -> Partition {
    assert!(clients >= 1, "need at least one client");
    let classes = dataset.classes();
    let class_counts = dataset.class_counts();
    assert!(dataset.len() >= clients, "fewer samples than clients");

    let mut rng = Xoshiro256pp::stream(seed, &[0xFED6, clients as u64, beta.to_bits()]);
    let dir = Dirichlet::symmetric(beta, clients);

    let mut counts = vec![vec![0usize; classes]; clients];
    for c in 0..classes {
        let w = dir.sample(&mut rng);
        let alloc = round_to_sum(&w, class_counts[c]);
        for (k, &a) in alloc.iter().enumerate() {
            counts[k][c] = a;
        }
    }

    // FedGrab's rule: no empty clients — donate one sample of the globally
    // largest class from the currently largest client.
    let head_class = {
        let mut best = 0;
        for (c, &n) in class_counts.iter().enumerate() {
            if n > class_counts[best] {
                best = c;
            }
        }
        best
    };
    for k in 0..clients {
        let total: usize = counts[k].iter().sum();
        if total == 0 {
            let donor = (0..clients)
                .max_by_key(|&j| counts[j][head_class])
                .unwrap_or(0);
            assert!(counts[donor][head_class] > 0, "no donor sample available");
            counts[donor][head_class] -= 1;
            counts[k][head_class] += 1;
        }
    }

    deal_from_pools(dataset, &counts, &mut rng)
}

/// The CReFF/CLIP2FL-style partition (Appendix A.1): per-class `Dir(β)`
/// splits like [`fedgrab_partition`], but instead of donating samples to
/// empty clients, the whole draw is **resampled** until every client owns
/// at least one sample — which, as the paper notes, indirectly limits how
/// extreme the realised skew can get.
///
/// Panics after `max_attempts` failed draws (tiny datasets with many
/// clients may make the constraint unsatisfiable in reasonable time).
pub fn creff_partition(
    dataset: &Dataset,
    clients: usize,
    beta: f64,
    seed: u64,
    max_attempts: usize,
) -> Partition {
    assert!(clients >= 1, "need at least one client");
    assert!(max_attempts >= 1);
    let classes = dataset.classes();
    let class_counts = dataset.class_counts();
    assert!(dataset.len() >= clients, "fewer samples than clients");

    let mut rng = Xoshiro256pp::stream(seed, &[0xCEFF_0002, clients as u64, beta.to_bits()]);
    let dir = Dirichlet::symmetric(beta, clients);
    for attempt in 0..max_attempts {
        let mut counts = vec![vec![0usize; classes]; clients];
        for c in 0..classes {
            let w = dir.sample(&mut rng);
            let alloc = round_to_sum(&w, class_counts[c]);
            for (k, &a) in alloc.iter().enumerate() {
                counts[k][c] = a;
            }
        }
        if counts.iter().all(|row| row.iter().sum::<usize>() > 0) {
            let _ = attempt;
            return deal_from_pools(dataset, &counts, &mut rng);
        }
    }
    // lint:allow(panic-freedom) documented API contract (see the rustdoc
    // above): exhausting max_attempts means the caller's configuration is
    // unsatisfiable, and the paper's protocol has no fallback draw.
    panic!("creff_partition: no draw without empty clients in {max_attempts} attempts");
}

/// Deal concrete sample indices out of per-class pools according to an
/// integer count matrix whose column sums equal the dataset class counts.
fn deal_from_pools(dataset: &Dataset, counts: &[Vec<usize>], rng: &mut Xoshiro256pp) -> Partition {
    let classes = dataset.classes();
    let mut pools: Vec<Vec<usize>> = (0..classes).map(|c| dataset.indices_of_class(c)).collect();
    for pool in pools.iter_mut() {
        rng.shuffle(pool);
    }
    let mut client_indices: Vec<Vec<usize>> = counts
        .iter()
        .map(|row| Vec::with_capacity(row.iter().sum()))
        .collect();
    for (row, out) in counts.iter().zip(client_indices.iter_mut()) {
        for (c, &take) in row.iter().enumerate() {
            let pool = &mut pools[c];
            assert!(
                pool.len() >= take,
                "class {c} pool exhausted: need {take}, have {}",
                pool.len()
            );
            out.extend(pool.drain(pool.len() - take..));
        }
    }
    Partition { client_indices }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longtail::longtail_counts;
    use crate::synth::DatasetPreset;
    use fedwcm_stats::describe::gini;

    fn make_dataset(imb: f64) -> Dataset {
        let spec = DatasetPreset::FashionMnist.spec();
        let counts = longtail_counts(10, 300, imb);
        spec.generate_train(&counts, 77)
    }

    #[test]
    fn paper_partition_equal_quantities() {
        let ds = make_dataset(0.1);
        let p = paper_partition(&ds, 20, 0.1, 1);
        let sizes = p.client_sizes();
        let total: usize = sizes.iter().sum();
        assert_eq!(total, ds.len());
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        // Row marginal is approximate after integer rounding; stay tight.
        assert!(max - min <= (ds.len() / 20) / 5 + 2, "sizes {min}..{max}");
    }

    #[test]
    fn paper_partition_class_totals_exact() {
        let ds = make_dataset(0.1);
        let p = paper_partition(&ds, 15, 0.5, 2);
        let m = p.counts_matrix(&ds);
        let class_counts = ds.class_counts();
        for c in 0..10 {
            let col: usize = m.iter().map(|row| row[c]).sum();
            assert_eq!(col, class_counts[c], "class {c}");
        }
    }

    #[test]
    fn paper_partition_no_index_reuse() {
        let ds = make_dataset(0.5);
        let p = paper_partition(&ds, 10, 0.1, 3);
        let mut seen = vec![false; ds.len()];
        for k in 0..p.num_clients() {
            for &i in p.client(k) {
                assert!(!seen[i], "index {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lower_beta_more_class_skew() {
        let ds = make_dataset(1.0);
        let skew = |beta: f64| -> f64 {
            let p = paper_partition(&ds, 20, beta, 4);
            let m = p.counts_matrix(&ds);
            // Mean within-client max-class share.
            let mut acc = 0.0;
            for row in &m {
                let total: usize = row.iter().sum();
                let max = *row.iter().max().unwrap();
                acc += max as f64 / total.max(1) as f64;
            }
            acc / m.len() as f64
        };
        let high_skew = skew(0.1);
        let low_skew = skew(10.0);
        assert!(
            high_skew > low_skew + 0.15,
            "β=0.1 share {high_skew} vs β=10 share {low_skew}"
        );
    }

    #[test]
    fn paper_partition_quantity_gini_near_zero() {
        let ds = make_dataset(0.1);
        let p = paper_partition(&ds, 25, 0.1, 5);
        let sizes: Vec<f64> = p.client_sizes().iter().map(|&s| s as f64).collect();
        assert!(gini(&sizes) < 0.02, "gini {}", gini(&sizes));
    }

    #[test]
    fn fedgrab_partition_quantity_skewed() {
        let ds = make_dataset(0.1);
        let p = fedgrab_partition(&ds, 25, 0.1, 6);
        let sizes: Vec<f64> = p.client_sizes().iter().map(|&s| s as f64).collect();
        let total: usize = p.client_sizes().iter().sum();
        assert_eq!(total, ds.len());
        assert!(gini(&sizes) > 0.3, "gini {}", gini(&sizes));
        // Nobody is empty.
        assert!(p.client_sizes().iter().all(|&s| s >= 1));
    }

    #[test]
    fn fedgrab_class_totals_exact() {
        let ds = make_dataset(0.5);
        let p = fedgrab_partition(&ds, 12, 0.3, 7);
        let m = p.counts_matrix(&ds);
        let class_counts = ds.class_counts();
        for c in 0..10 {
            let col: usize = m.iter().map(|row| row[c]).sum();
            assert_eq!(col, class_counts[c], "class {c}");
        }
    }

    #[test]
    fn partitions_deterministic() {
        let ds = make_dataset(0.1);
        let a = paper_partition(&ds, 10, 0.1, 42);
        let b = paper_partition(&ds, 10, 0.1, 42);
        for k in 0..10 {
            assert_eq!(a.client(k), b.client(k));
        }
        let c = paper_partition(&ds, 10, 0.1, 43);
        assert!((0..10).any(|k| a.client(k) != c.client(k)));
    }

    #[test]
    fn creff_partition_no_empty_clients() {
        let ds = make_dataset(0.1);
        let p = creff_partition(&ds, 20, 0.3, 8, 1000);
        assert!(p.client_sizes().iter().all(|&s| s >= 1));
        let total: usize = p.client_sizes().iter().sum();
        assert_eq!(total, ds.len());
        // Class totals preserved.
        let m = p.counts_matrix(&ds);
        let class_counts = ds.class_counts();
        for c in 0..10 {
            let col: usize = m.iter().map(|row| row[c]).sum();
            assert_eq!(col, class_counts[c], "class {c}");
        }
    }

    #[test]
    fn creff_partition_deterministic() {
        let ds = make_dataset(0.5);
        let a = creff_partition(&ds, 8, 0.5, 11, 1000);
        let b = creff_partition(&ds, 8, 0.5, 11, 1000);
        for k in 0..8 {
            assert_eq!(a.client(k), b.client(k));
        }
    }

    #[test]
    fn round_to_sum_exact() {
        for target in [0usize, 1, 7, 100] {
            let v = [0.2, 3.7, 1.1, 0.0, 2.5];
            let r = round_to_sum(&v, target);
            assert_eq!(r.iter().sum::<usize>(), target);
        }
        // Degenerate all-zero weights still hits the target.
        let r = round_to_sum(&[0.0, 0.0, 0.0], 5);
        assert_eq!(r.iter().sum::<usize>(), 5);
    }

    #[test]
    fn views_match_counts() {
        let ds = make_dataset(0.1);
        let p = paper_partition(&ds, 8, 0.2, 9);
        let views = p.views(&ds);
        let m = p.counts_matrix(&ds);
        for (v, row) in views.iter().zip(&m) {
            assert_eq!(v.class_counts(), row.as_slice());
        }
    }
}
