//! Table/series formatting and multi-trial aggregation.

use crate::cli::Cli;
use crate::methods::{build_method, Method};
use crate::setup::ExpConfig;
use fedwcm_fl::{History, NetPlan};
use fedwcm_trace::{MetricValue, MetricsRegistry, MetricsSnapshot};
use std::sync::Arc;

/// Run one `(condition, method)` cell, averaging final accuracy over
/// `cli.trials` seeds (the paper reports 3-seed means).
pub fn run_cell(exp: &ExpConfig, method: Method, cli: &Cli) -> f64 {
    let mut acc = 0.0;
    for t in 0..cli.trials {
        let mut e = exp.clone();
        e.seed = exp.seed.wrapping_add(1000 * t as u64);
        if let Some(r) = cli.rounds {
            e.rounds = r;
        }
        e.cadence = cli.cadence;
        let task = e.prepare();
        let mut sim = task.simulation();
        if let Some(net) = &cli.net {
            sim = sim.with_net_plan(NetPlan::new(net.clone()));
        }
        let mut algo = build_method(method, &task);
        let history = sim.run(algo.as_mut());
        acc += history.final_accuracy(3);
    }
    acc / cli.trials as f64
}

/// Run one cell and return the full history of the **first** trial
/// (figures need the trajectory, not just the endpoint).
///
/// A metrics registry is attached so [`History::metrics`] carries the
/// run's counters/gauges/histograms (bytes up/down, update-norm
/// distribution, α trajectory, per-class accuracy); registries never
/// feed back into simulation state, so results are unchanged.
pub fn run_history(exp: &ExpConfig, method: Method, cli: &Cli) -> History {
    let mut e = exp.clone();
    if let Some(r) = cli.rounds {
        e.rounds = r;
    }
    e.cadence = cli.cadence;
    let task = e.prepare();
    let mut sim = task
        .simulation()
        .with_metrics(Arc::new(MetricsRegistry::new()));
    if let Some(net) = &cli.net {
        sim = sim.with_net_plan(NetPlan::new(net.clone()));
    }
    let mut algo = build_method(method, &task);
    sim.run(algo.as_mut())
}

/// Print a markdown-style table: one row per label, one column per
/// header, 4-decimal accuracies (the paper's format).
pub fn print_table(title: &str, headers: &[String], rows: &[(String, Vec<f64>)]) {
    println!("\n## {title}\n");
    print!("| {:<22} |", "");
    for h in headers {
        print!(" {h:>10} |");
    }
    println!();
    print!("|{}|", "-".repeat(24));
    for _ in headers {
        print!("{}|", "-".repeat(12));
    }
    println!();
    for (label, values) in rows {
        print!("| {label:<22} |");
        for v in values {
            print!(" {v:>10.4} |");
        }
        println!();
    }
}

/// Print an accuracy-vs-round series as CSV (round, then one column per
/// method) — the figure data.
pub fn print_series(title: &str, histories: &[History]) {
    println!("\n## {title} (CSV: round,{})", join_names(histories));
    print!("{}", format_series(histories));
}

/// CSV body for [`print_series`]: one row per round in the **union** of
/// evaluated rounds across all histories, aligned by round number.
///
/// Histories may evaluate at different cadences (or miss boundaries when
/// a run is cut short); a method without a measurement at some round gets
/// an empty cell rather than silently shifting its column.
pub fn format_series(histories: &[History]) -> String {
    let mut rounds: Vec<usize> = histories
        .iter()
        .flat_map(|h| h.accuracy_series().into_iter().map(|(r, _)| r))
        .collect();
    rounds.sort_unstable();
    rounds.dedup();
    let series: Vec<Vec<(usize, f64)>> = histories.iter().map(|h| h.accuracy_series()).collect();

    let mut out = String::new();
    for &r in &rounds {
        out.push_str(&r.to_string());
        for s in &series {
            match s.iter().find(|&&(round, _)| round == r) {
                Some(&(_, acc)) => out.push_str(&format!(",{acc:.4}")),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

fn join_names(histories: &[History]) -> String {
    histories
        .iter()
        .map(|h| h.name.clone())
        .collect::<Vec<_>>()
        .join(",")
}

/// Convenience: format a float table cell vector from (method → accuracy).
pub fn accuracy_row(label: impl Into<String>, values: Vec<f64>) -> (String, Vec<f64>) {
    (label.into(), values)
}

/// Markdown table of the per-phase timing histograms (`fl.phase.*` and
/// `fl.round_ticks`): observation count, mean/total ticks, and the
/// p50/p95/p99 bucket-interpolated percentile estimates.
/// Empty string when the snapshot holds no phase histograms (e.g. the
/// run had no tracer attached, so phase boundaries were never stamped).
pub fn phase_time_table(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for e in &snap.entries {
        let is_phase = e.name.starts_with("fl.phase.") || e.name == "fl.round_ticks";
        if !is_phase {
            continue;
        }
        let MetricValue::Histogram(h) = &e.value else {
            continue;
        };
        if out.is_empty() {
            out.push_str(
                "| phase                  |      count |  mean ticks | total ticks \
                 |         p50 |         p95 |         p99 |\n",
            );
            out.push_str(
                "|------------------------|------------|-------------|-------------\
                 |-------------|-------------|-------------|\n",
            );
        }
        let (p50, p95, p99) = h.p50_p95_p99().unwrap_or((0.0, 0.0, 0.0));
        out.push_str(&format!(
            "| {:<22} | {:>10} | {:>11.1} | {:>11.0} | {:>11.1} | {:>11.1} | {:>11.1} |\n",
            e.name,
            h.total,
            h.mean().unwrap_or(0.0),
            h.sum,
            p50,
            p95,
            p99,
        ));
    }
    out
}

/// One line per metric in the snapshot: counters and gauges with their
/// value, histograms with count/mean. Empty string for an empty
/// snapshot, so binaries can print it unconditionally.
pub fn metrics_summary(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for e in &snap.entries {
        match &e.value {
            MetricValue::Counter(v) => out.push_str(&format!("{} = {v}\n", e.name)),
            MetricValue::Gauge(v) => out.push_str(&format!("{} = {v:.6}\n", e.name)),
            MetricValue::Histogram(h) => out.push_str(&format!(
                "{}: n={} mean={:.3} nan_rejected={}\n",
                e.name,
                h.total,
                h.mean().unwrap_or(0.0),
                h.nan_rejected
            )),
        }
    }
    out
}

/// Print the metrics carried by a history (summary plus phase table)
/// under a `## metrics` heading; prints nothing when the history has no
/// metrics, so every binary can call this unconditionally.
pub fn print_metrics(history: &History) {
    if history.metrics.is_empty() {
        return;
    }
    println!("\n## metrics: {}\n", history.name);
    let phases = phase_time_table(&history.metrics);
    if !phases.is_empty() {
        print!("{phases}");
        println!();
    }
    print!("{}", metrics_summary(&history.metrics));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cli::Scale;
    use fedwcm_data::synth::DatasetPreset;

    #[test]
    fn run_cell_smoke() {
        let exp = ExpConfig::new(DatasetPreset::FashionMnist, 1.0, 0.6, Scale::Smoke, 5);
        let cli = Cli {
            scale: Scale::Smoke,
            ..Cli::default()
        };
        let acc = run_cell(&exp, Method::FedAvg, &cli);
        assert!((0.0..=1.0).contains(&acc));
        assert!(acc > 0.2, "smoke FedAvg acc {acc}");
    }

    #[test]
    fn run_history_has_records() {
        let exp = ExpConfig::new(DatasetPreset::FashionMnist, 1.0, 0.6, Scale::Smoke, 6);
        let cli = Cli {
            scale: Scale::Smoke,
            ..Cli::default()
        };
        let h = run_history(&exp, Method::FedCm, &cli);
        assert_eq!(h.records.len(), exp.rounds);
        assert!(!h.accuracy_series().is_empty());
    }

    #[test]
    fn format_series_aligns_by_round_number() {
        use fedwcm_fl::RoundRecord;
        let rec = |round: usize, acc: Option<f64>| RoundRecord {
            round,
            train_loss: None,
            update_norm: 0.0,
            test_acc: acc,
            alpha: None,
            aggregations: 0,
            dropped_updates: 0,
            faults: fedwcm_fl::RoundFaults::default(),
            net: fedwcm_fl::NetCounters::default(),
        };
        // Two methods evaluated at *different* rounds: pairing by index
        // would misattribute h2's round-2 accuracy to round 1.
        let mut h1 = History::new("a");
        h1.records = vec![rec(1, Some(0.1)), rec(3, Some(0.3)), rec(5, Some(0.5))];
        let mut h2 = History::new("b");
        h2.records = vec![rec(2, Some(0.2)), rec(3, Some(0.35)), rec(5, Some(0.55))];
        let csv = format_series(&[h1, h2]);
        let expected = "1,0.1000,\n2,,0.2000\n3,0.3000,0.3500\n5,0.5000,0.5500\n";
        assert_eq!(csv, expected);
    }

    #[test]
    fn format_series_empty_histories() {
        assert_eq!(format_series(&[]), "");
        assert_eq!(format_series(&[History::new("a")]), "");
    }

    #[test]
    fn run_history_carries_metrics() {
        let exp = ExpConfig::new(DatasetPreset::FashionMnist, 1.0, 0.6, Scale::Smoke, 4);
        let cli = Cli {
            scale: Scale::Smoke,
            ..Cli::default()
        };
        let h = run_history(&exp, Method::FedAvg, &cli);
        assert!(
            !h.metrics.is_empty(),
            "registry snapshot should land in History"
        );
        assert!(h.metrics.get("fl.rounds").is_some());
        let summary = metrics_summary(&h.metrics);
        assert!(summary.contains("fl.bytes.up"), "{summary}");
        assert!(summary.contains("fl.update_norm"), "{summary}");
    }

    #[test]
    fn phase_table_renders_phase_histograms_only() {
        let reg = MetricsRegistry::new();
        reg.counter_add("fl.rounds", 3);
        reg.observe("fl.phase.aggregate", &[10.0, 100.0], 5.0);
        reg.observe("fl.phase.aggregate", &[10.0, 100.0], 7.0);
        reg.observe("fl.update_norm", &[1.0], 0.5);
        let snap = reg.snapshot();
        let table = phase_time_table(&snap);
        assert!(table.contains("fl.phase.aggregate"), "{table}");
        assert!(!table.contains("fl.update_norm"), "{table}");
        assert!(!table.contains("fl.rounds"), "{table}");
        // count 2, mean 6.0, total 12
        assert!(table.contains("| fl.phase.aggregate"), "{table}");
        assert!(table.contains("6.0"), "{table}");
        // Percentile columns are rendered from the bucket estimator.
        assert!(table.contains("p50"), "{table}");
        assert!(table.contains("p99"), "{table}");
        // Both observations sit in the (0,10] bucket → p50 target rank
        // 1 of 2 interpolates to 5.0.
        assert!(table.contains("5.0"), "{table}");
    }

    #[test]
    fn phase_table_empty_without_phase_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter_add("fl.rounds", 1);
        assert!(phase_time_table(&reg.snapshot()).is_empty());
        assert!(phase_time_table(&MetricsSnapshot::default()).is_empty());
    }

    #[test]
    fn metrics_summary_covers_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", 4);
        reg.gauge_set("g", 0.25);
        reg.observe("h", &[1.0], 0.5);
        let s = metrics_summary(&reg.snapshot());
        assert!(s.contains("c = 4"), "{s}");
        assert!(s.contains("g = 0.250000"), "{s}");
        assert!(s.contains("h: n=1 mean=0.500"), "{s}");
        assert!(metrics_summary(&MetricsSnapshot::default()).is_empty());
    }

    #[test]
    fn rounds_override_applies() {
        let exp = ExpConfig::new(DatasetPreset::FashionMnist, 1.0, 0.6, Scale::Smoke, 7);
        let cli = Cli {
            rounds: Some(3),
            ..Cli::default()
        };
        let h = run_history(&exp, Method::FedAvg, &cli);
        assert_eq!(h.records.len(), 3);
    }
}
