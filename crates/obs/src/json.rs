//! A minimal, deterministic JSON model: strict recursive-descent
//! parser plus a canonical writer that byte-for-byte reproduces the
//! encoding `fedwcm_trace::JsonlSink` emits (fixed key order preserved,
//! shortest-roundtrip floats with a forced `.0` on integral values,
//! identical string escaping).
//!
//! Numbers are kept typed: an unsigned integer literal parses to
//! [`Json::U64`], a negative integer to [`Json::I64`], and anything
//! with a fraction or exponent to [`Json::F64`] — exactly the split the
//! trace encoder makes, so `parse` ∘ `write` is the identity on any
//! sink-written line (property-tested in `tests/roundtrip.rs`).

use crate::error::ObsError;

/// Maximum nesting depth the parser accepts; trace lines are flat and
/// profile documents are three levels deep, so this only guards
/// against adversarial input exhausting the stack.
const MAX_DEPTH: usize = 64;

/// A parsed JSON value. Object keys keep their source order, which is
/// what makes re-serialization canonical.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer literal.
    U64(u64),
    /// A negative integer literal.
    I64(i64),
    /// A number with a fraction or exponent.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serialize canonically (no whitespace, source key order,
    /// trace-encoder float and string formatting).
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(x) => out.push_str(&x.to_string()),
            Json::I64(x) => out.push_str(&x.to_string()),
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_str(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh string (see [`Json::write`]).
    pub fn to_json_string(&self) -> String {
        let mut out = String::with_capacity(64);
        self.write(&mut out);
        out
    }

    /// Serialize with two-space indentation. Purely a function of the
    /// value — no timestamps, no locale — so pretty output is as
    /// byte-stable as the compact form and safe to diff or commit.
    pub fn to_json_string_pretty(&self) -> String {
        let mut out = String::with_capacity(256);
        self.write_pretty(0, &mut out);
        out.push('\n');
        out
    }

    fn write_pretty(&self, indent: usize, out: &mut String) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    push_indent(indent + 1, out);
                    item.write_pretty(indent + 1, out);
                }
                out.push('\n');
                push_indent(indent, out);
                out.push(']');
            }
            Json::Obj(entries) if !entries.is_empty() => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    out.push_str(if i > 0 { ",\n" } else { "\n" });
                    push_indent(indent + 1, out);
                    write_str(k, out);
                    out.push_str(": ");
                    v.write_pretty(indent + 1, out);
                }
                out.push('\n');
                push_indent(indent, out);
                out.push('}');
            }
            other => other.write(out),
        }
    }

    /// The object's entry for `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an `f64` when it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(x) => Some(*x as f64),
            Json::I64(x) => Some(*x as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a string slice when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Write a float exactly the way the trace encoder does: shortest
/// round-trip `Display`, integral values forced to keep a `.0`, and
/// non-finite values encoded as `null`.
pub fn write_f64(x: f64, out: &mut String) {
    if x.is_finite() {
        let s = x.to_string();
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Write a string with the trace encoder's escaping: `"`, `\`, `\n`,
/// `\r`, `\t` named, all other control characters as `\u00XX`.
pub fn write_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse one complete JSON document; trailing non-whitespace is an
/// error. `line` seeds error positions so callers can report the JSONL
/// line the failure occurred on (use 1 for standalone documents).
pub fn parse(text: &str, line: usize) -> Result<Json, ObsError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
        line,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ObsError {
        ObsError::Json {
            line: self.line,
            offset: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), ObsError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ObsError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ObsError> {
        if depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ObsError> {
        self.consume(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let v = self.value(depth + 1)?;
            entries.push((key, v));
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(entries)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}' in object"));
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ObsError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']' in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ObsError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hi = self.hex4()?;
                        let c = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: require the low half.
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("unpaired surrogate escape"));
                            }
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                            char::from_u32(code)
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => out.push(c),
                            None => return Err(self.err("invalid unicode escape")),
                        }
                    }
                    _ => return Err(self.err("invalid escape sequence")),
                },
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences: the input
                    // &str is valid UTF-8, so continuation bytes follow.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = utf8_width(b);
                        let end = start + width;
                        match self
                            .bytes
                            .get(start..end)
                            .and_then(|s| std::str::from_utf8(s).ok())
                        {
                            Some(s) => {
                                out.push_str(s);
                                self.pos = end;
                            }
                            None => return Err(self.err("invalid UTF-8 in string")),
                        }
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ObsError> {
        let mut v: u32 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            v = (v << 4) | d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ObsError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("malformed number"));
        }
        let leading_zero = self.peek() == Some(b'0');
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if leading_zero && self.pos - int_start > 1 {
            return Err(self.err("leading zero in number"));
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number fraction"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("malformed number exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = match std::str::from_utf8(&self.bytes[start..self.pos]) {
            Ok(t) => t,
            Err(_) => return Err(self.err("malformed number")),
        };
        if !fractional {
            if negative {
                if let Ok(x) = text.parse::<i64>() {
                    return Ok(Json::I64(x));
                }
            } else if let Ok(x) = text.parse::<u64>() {
                return Ok(Json::U64(x));
            }
        }
        // Fractions, exponents, and integers beyond 64-bit range all
        // take the float path (f64::from_str is correctly rounded, so
        // shortest-roundtrip output re-parses to the identical value).
        match text.parse::<f64>() {
            Ok(x) => Ok(Json::F64(x)),
            Err(_) => Err(self.err("malformed number")),
        }
    }
}

fn push_indent(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Byte width of a UTF-8 sequence starting with `lead`.
fn utf8_width(lead: u8) -> usize {
    if lead >= 0xF0 {
        4
    } else if lead >= 0xE0 {
        3
    } else {
        2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(s: &str) -> Json {
        parse(s, 1).expect("parses")
    }

    #[test]
    fn scalars_round_trip() {
        for s in [
            "null",
            "true",
            "false",
            "0",
            "42",
            "-7",
            "2.5",
            "-0.0",
            "\"hi\"",
            "18446744073709551615",
        ] {
            assert_eq!(parse_ok(s).to_json_string(), s, "round-trip of {s}");
        }
        // Exponent notation is accepted but normalizes to Display form
        // (the trace encoder never emits exponents); the value is
        // preserved exactly.
        let normalized = parse_ok("1e300").to_json_string();
        assert_eq!(parse_ok(&normalized), Json::F64(1e300));
        assert_eq!(parse_ok(&normalized).to_json_string(), normalized);
    }

    #[test]
    fn number_typing_matches_the_encoder_split() {
        assert_eq!(parse_ok("3"), Json::U64(3));
        assert_eq!(parse_ok("-3"), Json::I64(-3));
        assert_eq!(parse_ok("3.0"), Json::F64(3.0));
        assert_eq!(parse_ok("1e2"), Json::F64(100.0));
    }

    #[test]
    fn objects_preserve_key_order() {
        let line = "{\"t\":7,\"ev\":\"start\",\"name\":\"round\",\"round\":3,\"loss\":0.5}";
        assert_eq!(parse_ok(line).to_json_string(), line);
    }

    #[test]
    fn nested_arrays_and_objects() {
        let s = "{\"a\":[1,2,{\"b\":[]}],\"c\":{}}";
        assert_eq!(parse_ok(s).to_json_string(), s);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "\"a\\\"b\\\\c\\nd\\u0001\"";
        assert_eq!(parse_ok(s).to_json_string(), s);
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse_ok("\"\\ud83d\\ude00\""), Json::Str("😀".into()));
    }

    #[test]
    fn unicode_passthrough() {
        let s = "\"héllo — ツ\"";
        assert_eq!(parse_ok(s).to_json_string(), s);
    }

    #[test]
    fn rejects_malformed_input() {
        for s in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "nul",
            "01",  // leading zero
            "1.",  // missing fraction digits
            "1e",  // missing exponent digits
            "\"x", // unterminated
            "\"\\q\"",
            "{\"a\":1}x",
        ] {
            assert!(parse(s, 1).is_err(), "should reject {s:?}");
        }
    }

    #[test]
    fn rejects_deep_nesting() {
        let s = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&s, 1).is_err());
    }

    #[test]
    fn error_carries_line_and_offset() {
        match parse("{\"a\":", 17) {
            Err(ObsError::Json { line, .. }) => assert_eq!(line, 17),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pretty_output_is_stable_and_reparses() {
        let v = parse_ok("{\"a\":[1,2],\"b\":{\"c\":true},\"d\":[],\"e\":{}}");
        let pretty = v.to_json_string_pretty();
        assert_eq!(
            pretty,
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {\n    \"c\": true\n  },\n  \"d\": [],\n  \"e\": {}\n}\n"
        );
        assert_eq!(parse(pretty.trim_end(), 1).expect("reparses"), v);
    }

    #[test]
    fn accessors() {
        let v = parse_ok("{\"n\":3,\"f\":1.5,\"s\":\"x\"}");
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("missing"), None);
    }
}
