//! FedWCM component ablations (DESIGN.md §4): switch off each adaptive
//! mechanism in turn and measure the damage at β = 0.6, IF ∈ {0.1, 0.05}.
//!
//! Variants: full FedWCM; fixed α = 0.1 (no Eq. 5); uniform aggregation
//! (no Eq. 4); fixed temperature; literal |·| scores (Eq. 3 as printed).

use fedwcm_core::{FedWcm, FedWcmOptions};
use fedwcm_data::synth::DatasetPreset;
use fedwcm_experiments::report::print_table;
use fedwcm_experiments::{parse_args, ExpConfig};

fn variants() -> Vec<(&'static str, FedWcmOptions)> {
    vec![
        ("FedWCM (full)", FedWcmOptions::default()),
        (
            "fixed alpha=0.1",
            FedWcmOptions {
                adaptive_alpha: false,
                ..FedWcmOptions::default()
            },
        ),
        (
            "uniform weights",
            FedWcmOptions {
                weighted_aggregation: false,
                ..FedWcmOptions::default()
            },
        ),
        (
            "fixed temperature",
            FedWcmOptions {
                adaptive_temperature: false,
                ..FedWcmOptions::default()
            },
        ),
        (
            "literal |.| scores",
            FedWcmOptions {
                literal_scores: true,
                ..FedWcmOptions::default()
            },
        ),
    ]
}

fn main() {
    let cli = parse_args(std::env::args());
    let console = cli.console();
    let ifs = [0.1, 0.05];
    let headers: Vec<String> = ifs.iter().map(|v| format!("IF={v}")).collect();
    let mut rows = Vec::new();
    for (label, options) in variants() {
        let mut values = Vec::new();
        for &imbalance in &ifs {
            let mut acc = 0.0;
            for t in 0..cli.trials {
                let mut exp =
                    ExpConfig::new(DatasetPreset::Cifar10, imbalance, 0.6, cli.scale, cli.seed);
                exp.seed = exp.seed.wrapping_add(1000 * t as u64);
                if let Some(r) = cli.rounds {
                    exp.rounds = r;
                }
                let task = exp.prepare();
                let sim = task.simulation();
                let mut algo = FedWcm::with_options(options.clone());
                let h = sim.run(&mut algo);
                acc += h.final_accuracy(3);
            }
            values.push(acc / cli.trials as f64);
        }
        console.info(format!("[ablation] {label} done"));
        rows.push((label.to_string(), values));
    }
    print_table("FedWCM ablations (beta=0.6)", &headers, &rows);
    println!(
        "\nReading: each disabled mechanism should cost accuracy at small\n\
         IF; the literal-score variant tests the Eq. 3 interpretation\n\
         documented in fedwcm-core::score."
    );
}
