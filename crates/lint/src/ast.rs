//! The syntax tree produced by [`crate::parser`].
//!
//! This is deliberately **not** a full Rust grammar: it models exactly
//! the subset the v2 rule families need — functions (with parameter
//! and return types as normalized text), `let` bindings, calls, method
//! chains, closures, binary/compound-assignment operators, casts, and
//! the control-flow shells (`if`/`match`/loops) those can hide inside.
//! Everything else parses to [`Expr::Opaque`] and is skipped; the
//! parser never fails on code rustc already accepted.

/// One parsed source file: the flat list of every function found,
/// including methods inside `impl`/`trait` blocks and nested `fn`s.
#[derive(Debug, Default)]
pub struct FileAst {
    /// All functions in declaration order.
    pub fns: Vec<FnDef>,
}

/// A function or method definition.
#[derive(Debug)]
pub struct FnDef {
    /// The function's own name.
    pub name: String,
    /// Self type of the enclosing `impl`/`trait` block, when any.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Parameters in order; a `self` receiver is recorded as
    /// `("self", <self type>)`, destructuring patterns as `("_", ty)`.
    pub params: Vec<Param>,
    /// Normalized return type text, when present.
    pub ret: Option<String>,
    /// The body; empty for trait-method declarations without one.
    pub body: Block,
}

/// One parameter or closure capture: name plus normalized type text
/// (empty when the closure parameter is untyped).
#[derive(Clone, Debug)]
pub struct Param {
    /// Binding name (`_` for non-trivial patterns).
    pub name: String,
    /// Normalized type text, e.g. `&mut [f64]`; may be empty.
    pub ty: String,
}

/// A `{ … }` block: statements in order.
#[derive(Debug, Default)]
pub struct Block {
    /// Statements in source order.
    pub stmts: Vec<Stmt>,
    /// 1-based line of the opening brace (0 for a synthetic block).
    pub line: usize,
}

/// One statement.
#[derive(Debug)]
pub enum Stmt {
    /// `let` binding. Non-identifier patterns bind the name `_`.
    Let {
        /// Binding name.
        name: String,
        /// Normalized annotation text, when written.
        ty: Option<String>,
        /// Initializer, when present.
        init: Option<Expr>,
        /// 1-based line of the `let`.
        line: usize,
    },
    /// Expression (or expression-statement).
    Expr(Expr),
}

/// Binary / compound-assignment operator spelling (`+`, `+=`, `&&`, …).
pub type Op = String;

/// One expression node.
#[derive(Debug)]
pub enum Expr {
    /// `a::b::c` path (also bare identifiers). Turbofish segments are
    /// dropped; only the identifier segments are kept.
    Path {
        /// Identifier segments.
        segs: Vec<String>,
        /// 1-based line.
        line: usize,
    },
    /// Number, string, or char literal (raw text preserved).
    Lit {
        /// Literal source text.
        text: String,
        /// 1-based line.
        line: usize,
    },
    /// Prefix operator: `&x`, `&mut x`, `*x`, `!x`, `-x`.
    Unary {
        /// `'&'`, `'*'`, `'!'`, or `'-'`.
        op: char,
        /// True for `&mut`.
        mutable: bool,
        /// Operand.
        expr: Box<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// Infix operator (arithmetic, comparison, logic, ranges).
    Binary {
        /// Operator spelling.
        op: Op,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// Assignment or compound assignment (`=`, `+=`, `<<=`, …).
    Assign {
        /// Operator spelling (`=`, `+=`, …).
        op: Op,
        /// Assigned place.
        target: Box<Expr>,
        /// Value expression.
        value: Box<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// Free or path call: `f(a)`, `m::f(a)`.
    Call {
        /// Callee (usually a [`Expr::Path`]).
        callee: Box<Expr>,
        /// Arguments in order.
        args: Vec<Expr>,
        /// 1-based line of the opening parenthesis.
        line: usize,
    },
    /// Method call: `x.f(a)`, `xs.iter().sum::<f64>()`.
    MethodCall {
        /// Receiver expression.
        recv: Box<Expr>,
        /// Method name.
        method: String,
        /// Turbofish text (`f64` from `::<f64>`), when present.
        turbofish: Option<String>,
        /// Arguments in order (receiver excluded).
        args: Vec<Expr>,
        /// 1-based line of the method name.
        line: usize,
    },
    /// Field access `x.name` / tuple field `x.0`.
    Field {
        /// Base expression.
        base: Box<Expr>,
        /// Field name or tuple index.
        name: String,
        /// 1-based line.
        line: usize,
    },
    /// Indexing `x[i]`.
    Index {
        /// Indexed expression.
        base: Box<Expr>,
        /// Index expression.
        index: Box<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// `expr as Ty`.
    Cast {
        /// Source expression.
        expr: Box<Expr>,
        /// Normalized target type text.
        ty: String,
        /// 1-based line of the `as`.
        line: usize,
    },
    /// Closure `|a, b| body` (including `move` closures).
    Closure {
        /// Parameters (types empty when elided).
        params: Vec<Param>,
        /// Body expression (often a [`Expr::BlockExpr`]).
        body: Box<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// `{ … }` block used as an expression (incl. `unsafe { … }`).
    BlockExpr(Block),
    /// `if`/`if let` with optional `else` chain.
    If {
        /// Condition (the bound expression for `if let`).
        cond: Box<Expr>,
        /// Then-block.
        then: Block,
        /// `else` expression (an `If` or `BlockExpr`), when present.
        els: Option<Box<Expr>>,
        /// 1-based line.
        line: usize,
    },
    /// `for`/`while`/`loop`.
    Loop {
        /// Iterated (`for`) or condition (`while`) expression.
        head: Option<Box<Expr>>,
        /// The `for` pattern's binding name when it is a plain
        /// identifier (`for d in …` → `d`, `for mut x in …` → `x`);
        /// `None` for `while`/`loop` and destructuring patterns.
        binding: Option<String>,
        /// Loop body.
        body: Block,
        /// 1-based line.
        line: usize,
    },
    /// `match` with arm bodies (patterns are skipped).
    Match {
        /// Scrutinee expression.
        scrutinee: Box<Expr>,
        /// Arm body expressions in order.
        arms: Vec<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// Macro invocation `name!(…)`; arguments parsed best-effort.
    Macro {
        /// Macro name (last path segment).
        name: String,
        /// Comma-separated argument expressions (best-effort).
        args: Vec<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// Struct literal `Path { field: expr, .. }`.
    Struct {
        /// Type path segments.
        segs: Vec<String>,
        /// Field initializers in order (shorthand fields included).
        fields: Vec<(String, Expr)>,
        /// 1-based line.
        line: usize,
    },
    /// Tuple or parenthesized expression.
    Tuple {
        /// Element expressions.
        items: Vec<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// Array literal `[a, b]` / `[x; n]`.
    Array {
        /// Element expressions.
        items: Vec<Expr>,
        /// 1-based line.
        line: usize,
    },
    /// `return`/`break` with optional value (`continue` has none).
    Jump {
        /// Carried value, when present.
        value: Option<Box<Expr>>,
        /// 1-based line.
        line: usize,
    },
    /// Anything the parser skipped.
    Opaque {
        /// 1-based line.
        line: usize,
    },
}

impl Expr {
    /// 1-based line this expression starts on.
    pub fn line(&self) -> usize {
        match self {
            Expr::Path { line, .. }
            | Expr::Lit { line, .. }
            | Expr::Unary { line, .. }
            | Expr::Binary { line, .. }
            | Expr::Assign { line, .. }
            | Expr::Call { line, .. }
            | Expr::MethodCall { line, .. }
            | Expr::Field { line, .. }
            | Expr::Index { line, .. }
            | Expr::Cast { line, .. }
            | Expr::Closure { line, .. }
            | Expr::If { line, .. }
            | Expr::Loop { line, .. }
            | Expr::Match { line, .. }
            | Expr::Macro { line, .. }
            | Expr::Struct { line, .. }
            | Expr::Tuple { line, .. }
            | Expr::Array { line, .. }
            | Expr::Jump { line, .. }
            | Expr::Opaque { line } => *line,
            Expr::BlockExpr(b) => b.line,
        }
    }

    /// The root identifier of a place expression: `self.x[i].y` → `self`,
    /// `acc` → `acc`, `*acc` → `acc`. `None` for non-place expressions.
    pub fn base_ident(&self) -> Option<&str> {
        match self {
            Expr::Path { segs, .. } => segs.first().map(String::as_str),
            Expr::Field { base, .. } | Expr::Index { base, .. } => base.base_ident(),
            Expr::Unary { expr, .. } => expr.base_ident(),
            _ => None,
        }
    }

    /// Render a place expression back to dotted text (`self.jobs`,
    /// `pool.queue`); `None` when the expression is not a simple place.
    pub fn place_text(&self) -> Option<String> {
        match self {
            Expr::Path { segs, .. } => Some(segs.join("::")),
            Expr::Field { base, name, .. } => Some(format!("{}.{name}", base.place_text()?)),
            Expr::Unary { expr, .. } => expr.place_text(),
            _ => None,
        }
    }

    /// Walk this expression tree in source order, calling `f` on every
    /// node (including `self`) before descending.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => expr.walk(f),
            Expr::Binary { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            Expr::Assign { target, value, .. } => {
                target.walk(f);
                value.walk(f);
            }
            Expr::Call { callee, args, .. } => {
                callee.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::MethodCall { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Field { base, .. } => base.walk(f),
            Expr::Index { base, index, .. } => {
                base.walk(f);
                index.walk(f);
            }
            Expr::Closure { body, .. } => body.walk(f),
            Expr::BlockExpr(b) => b.walk(f),
            Expr::If {
                cond, then, els, ..
            } => {
                cond.walk(f);
                then.walk(f);
                if let Some(e) = els {
                    e.walk(f);
                }
            }
            Expr::Loop { head, body, .. } => {
                if let Some(h) = head {
                    h.walk(f);
                }
                body.walk(f);
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                scrutinee.walk(f);
                for a in arms {
                    a.walk(f);
                }
            }
            Expr::Macro { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Struct { fields, .. } => {
                for (_, e) in fields {
                    e.walk(f);
                }
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for e in items {
                    e.walk(f);
                }
            }
            Expr::Jump { value, .. } => {
                if let Some(v) = value {
                    v.walk(f);
                }
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
        }
    }
}

impl Block {
    /// Walk every expression in the block (descending into sub-blocks).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        for s in &self.stmts {
            match s {
                Stmt::Let { init, .. } => {
                    if let Some(e) = init {
                        e.walk(f);
                    }
                }
                Stmt::Expr(e) => e.walk(f),
            }
        }
    }
}

/// A flow-insensitive map from local binding names to normalized type
/// text, built from one function's parameters, annotated `let`s, and
/// the few initializer shapes whose type is syntactically evident
/// (literal suffixes, casts, `.len()`). Lookup of an unbound name
/// returns `None` — callers must treat that as "type unknown", never
/// as a licence to assume.
#[derive(Debug, Default)]
pub struct TypeEnv {
    map: std::collections::BTreeMap<String, String>,
}

impl TypeEnv {
    /// Build the environment for `f`.
    pub fn of(f: &FnDef) -> Self {
        let mut env = TypeEnv::default();
        for p in &f.params {
            if !p.ty.is_empty() {
                env.map.insert(p.name.clone(), p.ty.clone());
            }
        }
        collect_lets(&f.body, &mut env);
        env
    }

    /// Normalized type text of `name`, when known.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.map.get(name).map(String::as_str)
    }

    /// Syntactic type of an expression under this environment:
    /// suffixed literals, casts, `.len()`, known idents, and the
    /// arithmetic closure of those. `None` when not evident.
    pub fn type_of(&self, e: &Expr) -> Option<String> {
        match e {
            Expr::Lit { text, .. } => lit_type(text),
            Expr::Cast { ty, .. } => Some(ty.clone()),
            Expr::Path { segs, .. } if segs.len() == 1 => self.get(&segs[0]).map(str::to_string),
            Expr::MethodCall { method, .. } if method == "len" => Some("usize".to_string()),
            // `Ty::new(…)` names its own type — enough to recognise
            // `let mut r = ByteReader::new(body)` receivers.
            Expr::Call { callee, .. } => match &**callee {
                Expr::Path { segs, .. }
                    if segs.len() >= 2 && segs.last().is_some_and(|s| s == "new") =>
                {
                    Some(segs[segs.len() - 2].clone())
                }
                _ => None,
            },
            Expr::Unary {
                op: '*' | '-',
                expr,
                ..
            } => {
                let t = self.type_of(expr)?;
                Some(
                    t.trim_start_matches('&')
                        .trim_start_matches("mut")
                        .trim()
                        .to_string(),
                )
            }
            Expr::Binary { op, lhs, rhs, .. }
                if matches!(op.as_str(), "+" | "-" | "*" | "/" | "%") =>
            {
                self.type_of(lhs).or_else(|| self.type_of(rhs))
            }
            Expr::Tuple { items, .. } if items.len() == 1 => self.type_of(&items[0]),
            _ => None,
        }
    }
}

fn collect_lets(b: &Block, env: &mut TypeEnv) {
    for s in &b.stmts {
        if let Stmt::Let { name, ty, init, .. } = s {
            if name != "_" {
                let t = match (ty, init) {
                    (Some(t), _) if !t.is_empty() => Some(t.clone()),
                    (_, Some(e)) => env.type_of(e),
                    _ => None,
                };
                if let Some(t) = t {
                    env.map.insert(name.clone(), t);
                }
            }
        }
        // Descend into nested blocks so `let`s inside loops/ifs count.
        let mut each = |e: &Expr| {
            if let Expr::BlockExpr(inner) = e {
                collect_lets(inner, env);
            }
            if let Expr::If { then, els, .. } = e {
                collect_lets(then, env);
                if let Some(els) = els {
                    if let Expr::BlockExpr(inner) = &**els {
                        collect_lets(inner, env);
                    }
                }
            }
            if let Expr::Loop { body, .. } = e {
                collect_lets(body, env);
            }
        };
        match s {
            Stmt::Let { init: Some(e), .. } => e.walk(&mut each),
            Stmt::Expr(e) => e.walk(&mut each),
            _ => {}
        }
    }
}

/// Numeric-literal type from its suffix or shape (`3usize` → `usize`,
/// `1.5` → `f64`, `2.0f32` → `f32`); `None` for unsuffixed integers.
fn lit_type(text: &str) -> Option<String> {
    const SUFFIXES: &[&str] = &[
        "usize", "isize", "u128", "i128", "u64", "i64", "u32", "i32", "u16", "i16", "u8", "i8",
        "f64", "f32",
    ];
    if !text.starts_with(|c: char| c.is_ascii_digit()) {
        return None;
    }
    for s in SUFFIXES {
        if text.ends_with(s) {
            return Some(s.to_string());
        }
    }
    if text.contains('.') {
        return Some("f64".to_string());
    }
    None
}

/// Strip references/mut/parens from a normalized type and return the
/// bare scalar name when it is one of Rust's numeric primitives.
pub fn scalar_of(ty: &str) -> Option<&str> {
    let t = ty
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start_matches("mut")
        .trim();
    const SCALARS: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        "f32", "f64",
    ];
    SCALARS.iter().find(|&&s| s == t).copied()
}

/// Element type of a slice/array/`Vec` type (`&mut [f64]` → `f64`,
/// `Vec<f32>` → `f32`); `None` otherwise.
pub fn elem_of(ty: &str) -> Option<&str> {
    let t = ty
        .trim_start_matches('&')
        .trim_start_matches("mut ")
        .trim_start_matches("mut")
        .trim();
    if let Some(inner) = t
        .strip_prefix('[')
        .and_then(|r| r.split([';', ']']).next().map(|s| s.trim()))
    {
        return scalar_of(inner);
    }
    if let Some(rest) = t.strip_prefix("Vec<") {
        return scalar_of(rest.trim_end_matches('>').trim());
    }
    None
}

/// True when the normalized type names an `f32`/`f64` scalar, slice, or
/// `Vec` thereof.
pub fn is_float_ty(ty: &str) -> bool {
    matches!(scalar_of(ty), Some("f32" | "f64")) || matches!(elem_of(ty), Some("f32" | "f64"))
}
