//! Pluggable event sinks: no-op, bounded ring buffer, JSONL writer,
//! and a human-readable console renderer.
//!
//! # Sink contract
//!
//! [`Sink::record`] is called once per event, in emission order, always
//! from the thread that owns the tracer's clock (the engine's round
//! loop; parallel work is buffered and replayed — see [`crate::tracer`]).
//! A sink must therefore preserve arrival order; it may drop events
//! (ring buffer) but must never reorder them. `record` must not panic:
//! I/O errors are swallowed, because observability must never take down
//! a training run.

use crate::event::{Event, EventKind, Value};
use crate::lock_recover;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Receives every emitted event; see the module docs for the contract.
pub trait Sink: Send + Sync {
    /// Record one event (in emission order).
    fn record(&self, event: &Event);

    /// Flush any buffered output (default: nothing to do).
    fn flush(&self) {}
}

/// Discards everything — the default sink of a disabled tracer.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Bounded in-memory buffer keeping the most recent events; the test
/// sink, and a cheap always-on flight recorder.
#[derive(Debug)]
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<Event>>,
}

impl RingSink {
    /// A ring holding at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        RingSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        lock_recover(&self.buf).iter().cloned().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        lock_recover(&self.buf).len()
    }

    /// True when nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RingSink {
    fn record(&self, event: &Event) {
        let mut buf = lock_recover(&self.buf);
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(event.clone());
    }
}

/// Writes one JSON object per event to any `Write` target (a file for
/// runs, a [`SharedBuf`] for tests, stdout for the CI probe).
#[derive(Debug)]
pub struct JsonlSink<W: Write + Send> {
    w: Mutex<W>,
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wrap a writer. Each event becomes `<json>\n`; write errors are
    /// swallowed (observability must not crash the run).
    pub fn new(w: W) -> Self {
        JsonlSink { w: Mutex::new(w) }
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn record(&self, event: &Event) {
        let mut w = lock_recover(&self.w);
        let _ = writeln!(w, "{}", event.to_json_line());
    }

    fn flush(&self) {
        let _ = lock_recover(&self.w).flush();
    }
}

/// A clonable in-memory `Write` target: every clone appends to the same
/// buffer. Lets tests hand a writer to a [`JsonlSink`] and still read
/// the bytes back afterwards.
#[derive(Clone, Debug, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// A fresh, empty shared buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of the bytes written so far.
    pub fn contents(&self) -> Vec<u8> {
        lock_recover(&self.0).clone()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        lock_recover(&self.0).extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Human-readable progress renderer for the experiment binaries,
/// writing to stderr (stdout stays reserved for table/CSV artifacts).
///
/// * verbosity 1 — only `info` point events (the binaries' progress
///   lines), rendered as `:: <msg>`.
/// * verbosity ≥ 2 — every event, with tick and kind.
///
/// Verbosity 0 should not construct a sink at all — use
/// [`crate::Tracer::disabled`].
#[derive(Clone, Copy, Debug)]
pub struct ConsoleSink {
    verbosity: u8,
}

impl ConsoleSink {
    /// A console sink at the given verbosity (see type docs).
    pub fn new(verbosity: u8) -> Self {
        ConsoleSink { verbosity }
    }

    fn render_fields(event: &Event) -> String {
        let mut out = String::new();
        for (k, v) in &event.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            match v {
                Value::U64(x) => out.push_str(&x.to_string()),
                Value::I64(x) => out.push_str(&x.to_string()),
                Value::F64(x) => out.push_str(&format!("{x:.6}")),
                Value::Bool(b) => out.push_str(&b.to_string()),
                Value::Str(s) => out.push_str(s),
            }
        }
        out
    }
}

impl Sink for ConsoleSink {
    fn record(&self, event: &Event) {
        if event.kind == EventKind::Point && event.name == crate::names::INFO {
            for (k, v) in &event.fields {
                if *k == "msg" {
                    if let Value::Str(s) = v {
                        eprintln!(":: {s}");
                    }
                }
            }
            return;
        }
        if self.verbosity >= 2 {
            eprintln!(
                "[{:>12}] {:<5} {}{}",
                event.t,
                event.kind.tag(),
                event.name,
                Self::render_fields(event)
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> Event {
        Event {
            t,
            kind: EventKind::Point,
            name: "x",
            fields: vec![],
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = RingSink::new(3);
        for t in 0..5 {
            ring.record(&ev(t));
        }
        let ts: Vec<u64> = ring.events().iter().map(|e| e.t).collect();
        assert_eq!(ts, [2, 3, 4]);
        assert_eq!(ring.len(), 3);
        assert!(!ring.is_empty());
    }

    #[test]
    fn jsonl_writes_one_line_per_event() {
        let buf = SharedBuf::new();
        let sink = JsonlSink::new(buf.clone());
        sink.record(&ev(1));
        sink.record(&ev(2));
        sink.flush();
        let text = String::from_utf8(buf.contents()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"t\":1,"));
    }

    #[test]
    fn shared_buf_clones_share_storage() {
        let a = SharedBuf::new();
        let mut b = a.clone();
        b.write_all(b"hi").unwrap();
        assert_eq!(a.contents(), b"hi");
    }
}
