//! Classification losses, including the long-tail-aware ones the paper
//! combines with FedCM: Focal loss, Balanced-Softmax ("Balance Loss" /
//! PriorCELoss), and LDAM.
//!
//! Every loss maps logits `[batch, C]` + integer labels to the scalar
//! *mean* loss and the mean gradient w.r.t. the logits (already divided by
//! the batch size), so `Model::backward` yields mean parameter gradients.

use fedwcm_tensor::Tensor;

/// A differentiable classification loss.
pub trait Loss: Send + Sync {
    /// Mean loss and mean logits-gradient for a batch.
    fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor);
}

/// Row-wise numerically-stable softmax.
pub fn softmax_rows(logits: &Tensor) -> Tensor {
    let mut out = logits.clone();
    let cols = out.cols();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut total = 0.0f32;
        for x in row.iter_mut() {
            *x = (*x - max).exp();
            total += *x;
        }
        debug_assert!(total > 0.0 && cols > 0);
        for x in row.iter_mut() {
            *x /= total;
        }
    }
    out
}

fn check_labels(logits: &Tensor, labels: &[usize]) {
    assert_eq!(logits.rows(), labels.len(), "batch/label length mismatch");
    let c = logits.cols();
    assert!(labels.iter().all(|&y| y < c), "label out of range");
    assert!(!labels.is_empty(), "empty batch");
}

/// Plain softmax cross-entropy.
pub struct CrossEntropy;

impl Loss for CrossEntropy {
    fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        check_labels(logits, labels);
        let batch = labels.len();
        let inv = 1.0 / batch as f32;
        let mut probs = softmax_rows(logits);
        let mut loss = 0.0f32;
        for (r, &y) in labels.iter().enumerate() {
            let row = probs.row_mut(r);
            loss -= row[y].max(1e-12).ln();
            row[y] -= 1.0;
            for x in row.iter_mut() {
                *x *= inv;
            }
        }
        (loss * inv, probs)
    }
}

/// Focal loss (Lin et al., 2017): `-(1-p_y)^γ log p_y`.
///
/// Down-weights easy (high-confidence) examples so rare classes receive
/// relatively more gradient. `gamma = 0` reduces to cross-entropy.
pub struct FocalLoss {
    /// Focusing parameter γ ≥ 0.
    pub gamma: f32,
}

impl FocalLoss {
    /// Standard γ=2 configuration.
    pub fn default_gamma() -> Self {
        FocalLoss { gamma: 2.0 }
    }
}

impl Loss for FocalLoss {
    fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        check_labels(logits, labels);
        assert!(self.gamma >= 0.0, "gamma must be non-negative");
        let batch = labels.len();
        let inv = 1.0 / batch as f32;
        let g = self.gamma;
        let mut probs = softmax_rows(logits);
        let mut loss = 0.0f32;
        for (r, &y) in labels.iter().enumerate() {
            let row = probs.row_mut(r);
            let p = row[y].clamp(1e-7, 1.0 - 1e-7);
            let one_minus = 1.0 - p;
            loss += -(one_minus.powf(g)) * p.ln();
            // d loss / d z_j = c · (p_j − δ_{jy}) with
            // c = (1−p)^γ − γ·p·(1−p)^{γ−1}·ln p   (c = 1 recovers CE).
            let c = one_minus.powf(g) - g * p * one_minus.powf(g - 1.0) * p.ln();
            row[y] -= 1.0;
            for x in row.iter_mut() {
                *x *= c * inv;
            }
        }
        (loss * inv, probs)
    }
}

/// Balanced Softmax / PriorCELoss ("Balance Loss" in the paper's tables):
/// cross-entropy on prior-adjusted logits `z_c + log π_c`.
///
/// With the long-tail prior π, the adjustment cancels the skew the prior
/// induces in vanilla softmax training.
pub struct BalancedSoftmax {
    log_prior: Vec<f32>,
}

impl BalancedSoftmax {
    /// Build from per-class sample counts (the training prior).
    pub fn from_counts(counts: &[usize]) -> Self {
        assert!(!counts.is_empty(), "need per-class counts");
        let total: usize = counts.iter().sum();
        assert!(total > 0, "all-zero class counts");
        let log_prior = counts
            .iter()
            .map(|&n| {
                // Floor empty classes at one pseudo-count to stay finite.
                let p = (n.max(1)) as f32 / total as f32;
                p.ln()
            })
            .collect();
        BalancedSoftmax { log_prior }
    }
}

impl Loss for BalancedSoftmax {
    fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        check_labels(logits, labels);
        assert_eq!(logits.cols(), self.log_prior.len(), "class count mismatch");
        let mut adjusted = logits.clone();
        for r in 0..adjusted.rows() {
            for (x, lp) in adjusted.row_mut(r).iter_mut().zip(&self.log_prior) {
                *x += lp;
            }
        }
        CrossEntropy.loss_and_grad(&adjusted, labels)
    }
}

/// LDAM loss (Cao et al., 2019): label-distribution-aware margins
/// `Δ_c ∝ n_c^{-1/4}`, applied to the true-class logit, with scale `s`.
pub struct LdamLoss {
    margins: Vec<f32>,
    scale: f32,
}

impl LdamLoss {
    /// Build from per-class counts; `max_margin` rescales the largest
    /// margin (paper default 0.5), `scale` is the logit multiplier
    /// (paper default 30).
    pub fn from_counts(counts: &[usize], max_margin: f32, scale: f32) -> Self {
        assert!(!counts.is_empty(), "need per-class counts");
        assert!(max_margin > 0.0 && scale > 0.0);
        let raw: Vec<f32> = counts
            .iter()
            .map(|&n| 1.0 / (n.max(1) as f32).powf(0.25))
            .collect();
        let max = raw.iter().cloned().fold(0.0f32, f32::max);
        let margins = raw.iter().map(|&m| m / max * max_margin).collect();
        LdamLoss { margins, scale }
    }

    /// Paper-default configuration.
    pub fn default_from_counts(counts: &[usize]) -> Self {
        Self::from_counts(counts, 0.5, 30.0)
    }
}

impl Loss for LdamLoss {
    fn loss_and_grad(&self, logits: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        check_labels(logits, labels);
        assert_eq!(logits.cols(), self.margins.len(), "class count mismatch");
        let mut shifted = logits.clone();
        for (r, &y) in labels.iter().enumerate() {
            shifted.row_mut(r)[y] -= self.margins[y];
        }
        for x in shifted.as_mut_slice() {
            *x *= self.scale;
        }
        let (loss, mut grad) = CrossEntropy.loss_and_grad(&shifted, labels);
        // Chain rule through the scale.
        for x in grad.as_mut_slice() {
            *x *= self.scale;
        }
        (loss, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fd_check(loss: &dyn Loss, logits: &Tensor, labels: &[usize], tol: f32) {
        let (_, grad) = loss.loss_and_grad(logits, labels);
        let eps = 1e-3;
        let base = logits.as_slice().to_vec();
        for i in 0..base.len() {
            let mut z = base.clone();
            z[i] += eps;
            let up = loss
                .loss_and_grad(&Tensor::from_vec(z.clone(), logits.shape()), labels)
                .0;
            z[i] -= 2.0 * eps;
            let down = loss
                .loss_and_grad(&Tensor::from_vec(z, logits.shape()), labels)
                .0;
            let fd = (up - down) / (2.0 * eps);
            assert!(
                (fd - grad.as_slice()[i]).abs() < tol,
                "logit {i}: fd {fd} vs analytic {}",
                grad.as_slice()[i]
            );
        }
    }

    fn sample_logits() -> (Tensor, Vec<usize>) {
        (
            Tensor::from_vec(vec![2.0, -1.0, 0.5, 0.1, 0.2, -0.3], &[2, 3]),
            vec![0, 2],
        )
    }

    #[test]
    fn softmax_rows_normalised() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]);
        let p = softmax_rows(&t);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
            assert!(p.row(r).iter().all(|&x| x > 0.0));
        }
    }

    #[test]
    fn ce_gradient_matches_fd() {
        let (z, y) = sample_logits();
        fd_check(&CrossEntropy, &z, &y, 1e-3);
    }

    #[test]
    fn ce_perfect_prediction_low_loss() {
        let z = Tensor::from_vec(vec![20.0, 0.0, 0.0], &[1, 3]);
        let (l, _) = CrossEntropy.loss_and_grad(&z, &[0]);
        assert!(l < 1e-6);
    }

    #[test]
    fn focal_gamma_zero_equals_ce() {
        let (z, y) = sample_logits();
        let (lf, gf) = FocalLoss { gamma: 0.0 }.loss_and_grad(&z, &y);
        let (lc, gc) = CrossEntropy.loss_and_grad(&z, &y);
        assert!((lf - lc).abs() < 1e-5);
        assert!(gf.max_abs_diff(&gc) < 1e-5);
    }

    #[test]
    fn focal_gradient_matches_fd() {
        let (z, y) = sample_logits();
        fd_check(&FocalLoss { gamma: 2.0 }, &z, &y, 2e-3);
    }

    #[test]
    fn focal_downweights_easy_examples() {
        // Confident correct prediction should get much smaller loss under
        // focal than under CE, relatively.
        let z = Tensor::from_vec(vec![4.0, 0.0, 0.0], &[1, 3]);
        let (lf, _) = FocalLoss { gamma: 2.0 }.loss_and_grad(&z, &[0]);
        let (lc, _) = CrossEntropy.loss_and_grad(&z, &[0]);
        assert!(lf < lc * 0.01, "focal {lf} vs ce {lc}");
    }

    #[test]
    fn balanced_softmax_gradient_matches_fd() {
        let (z, y) = sample_logits();
        let loss = BalancedSoftmax::from_counts(&[100, 10, 1]);
        fd_check(&loss, &z, &y, 1e-3);
    }

    #[test]
    fn balanced_softmax_uniform_prior_equals_ce() {
        let (z, y) = sample_logits();
        let loss = BalancedSoftmax::from_counts(&[50, 50, 50]);
        let (lb, gb) = loss.loss_and_grad(&z, &y);
        let (lc, gc) = CrossEntropy.loss_and_grad(&z, &y);
        assert!((lb - lc).abs() < 1e-5);
        assert!(gb.max_abs_diff(&gc) < 1e-5);
    }

    #[test]
    fn balanced_softmax_penalises_head_class() {
        // Same logits: predicting the head class must incur more loss than
        // predicting the tail class, because the prior inflates the head.
        let loss = BalancedSoftmax::from_counts(&[1000, 10]);
        let z = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let (l_head, _) = loss.loss_and_grad(&z, &[0]);
        let (l_tail, _) = loss.loss_and_grad(&z, &[1]);
        assert!(l_tail > l_head, "tail {l_tail} head {l_head}");
    }

    #[test]
    fn ldam_gradient_matches_fd() {
        let (z, y) = sample_logits();
        let loss = LdamLoss::from_counts(&[100, 10, 1], 0.5, 2.0);
        fd_check(&loss, &z, &y, 5e-3);
    }

    #[test]
    fn ldam_margins_larger_for_rare_classes() {
        let loss = LdamLoss::default_from_counts(&[10_000, 100, 1]);
        assert!(loss.margins[2] > loss.margins[1]);
        assert!(loss.margins[1] > loss.margins[0]);
        assert!((loss.margins[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn label_out_of_range_panics() {
        let z = Tensor::zeros(&[1, 3]);
        let _ = CrossEntropy.loss_and_grad(&z, &[3]);
    }
}
