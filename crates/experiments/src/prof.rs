//! `flprof`'s engine: load traces, render profiles, evaluate budgets.
//!
//! The binary in `bin/flprof.rs` is a thin argument parser around the
//! functions here, so everything user-visible — the analysis pipeline,
//! the table renderer, the exit-code decisions — is unit-testable
//! without spawning a process. All JSON output is byte-stable: it is a
//! pure function of the trace bytes, which are themselves bitwise
//! deterministic across thread counts under a logical clock.

use fedwcm_obs::{
    analyze, build_forest, diff, folded_stacks, parse_trace, Budget, ObsError, Profile, SpanForest,
};

/// Parse trace text and run the full pipeline: records → forest →
/// profile. Returns the forest too so callers can render flame output
/// without re-parsing.
pub fn analyze_trace_text(text: &str) -> Result<(Profile, SpanForest), ObsError> {
    let records = parse_trace(text)?;
    let forest = build_forest(&records)?;
    let profile = analyze(&forest);
    Ok((profile, forest))
}

/// The profile as a pretty-printed `fedwcm-prof/v1` JSON document
/// (trailing newline included; byte-stable).
pub fn profile_json(profile: &Profile) -> String {
    profile.to_json().to_json_string_pretty()
}

/// Human-readable profile rendering: totals, the four-way attribution,
/// a per-phase table, and one line per round with its label and
/// critical path.
pub fn profile_table(profile: &Profile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "records {}  spans {}  points {}  total_ticks {}\n",
        profile.records, profile.spans, profile.points, profile.total_ticks
    ));
    let a = profile.attribution;
    out.push_str(&format!(
        "attribution: compute {}  faults {}  wire {}  overhead {}\n\n",
        a.compute_ticks, a.fault_ticks, a.wire_ticks, a.overhead_ticks
    ));
    out.push_str(&format!(
        "{:<16} {:>7} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
        "phase", "count", "total", "self", "min", "max", "p50", "p95", "p99"
    ));
    for p in &profile.phases {
        out.push_str(&format!(
            "{:<16} {:>7} {:>9} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}\n",
            p.name,
            p.count,
            p.total_ticks,
            p.self_ticks,
            p.min_ticks,
            p.max_ticks,
            p.p50_ticks,
            p.p95_ticks,
            p.p99_ticks
        ));
    }
    if !profile.rounds.is_empty() {
        out.push('\n');
        for r in &profile.rounds {
            out.push_str(&format!(
                "round {:>3}: {:>7} ticks  {:<15} faults={} retries={}  {}\n",
                r.round,
                r.ticks,
                r.label.as_str(),
                r.fault_points,
                r.retry_points,
                r.critical_path
            ));
        }
    }
    out
}

/// Folded flame stacks for a trace (see [`fedwcm_obs::folded_stacks`]).
pub fn flame_text(forest: &SpanForest) -> String {
    folded_stacks(forest)
}

/// Evaluate a budget against a profile: the report JSON (pretty,
/// byte-stable) and whether every ceiling held.
pub fn run_budget(budget_text: &str, profile: &Profile) -> Result<(String, bool), ObsError> {
    let budget = Budget::parse(budget_text)?;
    let report = budget.check(profile);
    Ok((report.to_json().to_json_string_pretty(), report.ok()))
}

/// Diff a current profile against a committed baseline document,
/// optionally gated by a budget's `growth_ratio_max`. Returns the
/// `fedwcm-prof-diff/v1` report JSON and whether no regression fired.
pub fn run_diff(
    baseline_text: &str,
    current_text: &str,
    budget_text: Option<&str>,
) -> Result<(String, bool), ObsError> {
    let baseline = Profile::from_json(&fedwcm_obs::json::parse(baseline_text.trim_end(), 1)?)?;
    let current = Profile::from_json(&fedwcm_obs::json::parse(current_text.trim_end(), 1)?)?;
    let budget = match budget_text {
        Some(text) => Some(Budget::parse(text)?),
        None => None,
    };
    let report = diff(&baseline, &current, budget.as_ref());
    Ok((report.to_json().to_json_string_pretty(), report.ok()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small synthetic trace: two rounds, the second with a slowdown
    /// factor applied to its client update — the "seeded regression"
    /// used to prove the budget gate actually fails.
    fn trace(slow_factor: u64) -> String {
        let mut lines = Vec::new();
        let mut t = 1u64;
        for round in 0..2u64 {
            let stretch = if round == 1 { slow_factor } else { 1 };
            lines.push(format!(
                "{{\"t\":{t},\"ev\":\"start\",\"name\":\"round\",\"round\":{round}}}"
            ));
            t += 1;
            lines.push(format!(
                "{{\"t\":{t},\"ev\":\"start\",\"name\":\"client_update\"}}"
            ));
            t += 10 * stretch;
            lines.push(format!(
                "{{\"t\":{t},\"ev\":\"end\",\"name\":\"client_update\"}}"
            ));
            t += 1;
            lines.push(format!(
                "{{\"t\":{t},\"ev\":\"start\",\"name\":\"aggregate\"}}"
            ));
            t += 3;
            lines.push(format!(
                "{{\"t\":{t},\"ev\":\"end\",\"name\":\"aggregate\"}}"
            ));
            t += 1;
            lines.push(format!("{{\"t\":{t},\"ev\":\"end\",\"name\":\"round\"}}"));
            t += 1;
        }
        lines.into_iter().map(|l| format!("{l}\n")).collect()
    }

    const BUDGET: &str = r#"{
        "schema": "fedwcm-prof-budget/v1",
        "total_ticks_max": 60,
        "growth_ratio_max": 1.5,
        "phases": [
            {"name": "client_update", "p99_max": 15},
            {"name": "aggregate", "total_max": 10}
        ]
    }"#;

    #[test]
    fn clean_trace_passes_the_budget() {
        let (profile, _) = analyze_trace_text(&trace(1)).expect("valid trace");
        let (report, ok) = run_budget(BUDGET, &profile).expect("valid budget");
        assert!(ok, "unexpected violations: {report}");
        assert!(report.contains("\"ok\": true"));
    }

    #[test]
    fn seeded_regression_fails_the_budget() {
        // Stretch round 1's client update 10x: p99 and total ticks both
        // blow through the committed ceilings.
        let (profile, _) = analyze_trace_text(&trace(10)).expect("valid trace");
        let (report, ok) = run_budget(BUDGET, &profile).expect("valid budget");
        assert!(!ok, "the slowed span must violate the budget");
        assert!(report.contains("client_update"));
        assert!(report.contains("total_ticks"));
    }

    #[test]
    fn seeded_regression_fails_the_diff_gate_too() {
        let (base, _) = analyze_trace_text(&trace(1)).expect("valid");
        let (cur, _) = analyze_trace_text(&trace(10)).expect("valid");
        let (report, ok) = run_diff(&profile_json(&base), &profile_json(&cur), Some(BUDGET))
            .expect("valid inputs");
        assert!(!ok);
        assert!(report.contains("\"schema\": \"fedwcm-prof-diff/v1\""));
        assert!(report.contains("client_update"));
        // Self-diff stays clean.
        let (_, ok) = run_diff(&profile_json(&base), &profile_json(&base), Some(BUDGET))
            .expect("valid inputs");
        assert!(ok);
    }

    #[test]
    fn profile_json_is_byte_stable() {
        let (a, _) = analyze_trace_text(&trace(1)).expect("valid");
        let (b, _) = analyze_trace_text(&trace(1)).expect("valid");
        assert_eq!(profile_json(&a), profile_json(&b));
        assert!(profile_json(&a).ends_with('\n'));
    }

    #[test]
    fn table_and_flame_render() {
        let (profile, forest) = analyze_trace_text(&trace(1)).expect("valid");
        let table = profile_table(&profile);
        assert!(table.contains("client_update"));
        assert!(table.contains("compute-bound"));
        assert!(table.contains("round;client_update"));
        let flame = flame_text(&forest);
        assert!(flame.contains("round;aggregate 6\n"));
    }

    #[test]
    fn bad_inputs_surface_typed_errors() {
        assert!(analyze_trace_text("not json\n").is_err());
        let (profile, _) = analyze_trace_text(&trace(1)).expect("valid");
        assert!(run_budget("{\"schema\":\"wrong\"}", &profile).is_err());
        assert!(run_diff("{}", "{}", None).is_err());
    }
}
