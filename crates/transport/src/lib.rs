//! Fault-tolerant wire transport for federated simulations.
//!
//! Today the engine delivers every client upload by in-process function
//! call — a channel that cannot lose, damage, duplicate, reorder, or
//! delay anything. Real federations run over networks that do all five.
//! This crate builds the robust delivery layer *first*, against a
//! deterministic in-memory link, so a later process/socket substrate
//! drops in beneath an already chaos-tested protocol:
//!
//! * [`frame`] — a length-prefixed frame codec (magic, version, typed
//!   messages, CRC32 over header + payload) with a byte-exact
//!   encode/decode round-trip contract: any single flipped bit is
//!   rejected, never mis-parsed.
//! * [`plan`] — a seeded [`NetPlan`] injecting drop, bit-corruption,
//!   duplication, reorder, and whole-round delay at the frame level;
//!   `net_fault_for(round, client, attempt)` is a pure function on its
//!   own RNG stream, the same discipline as `fedwcm-faults`.
//! * [`link`] — the [`Link`] trait and its deterministic in-memory
//!   implementation releasing frames in logical-clock order.
//! * [`retry`] — per-attempt deadlines and capped exponential backoff
//!   with deterministically seeded jitter.
//! * [`courier`] — the delivery state machine tying it together:
//!   intact frames are Acked, damaged frames Nacked and retried,
//!   exhausted budgets degrade into the engine's existing
//!   dropout/straggler machinery instead of erroring.
//!
//! Everything is bitwise deterministic across thread counts: all
//! randomness is pure in `(seed, round, client, attempt)` and all
//! waiting is measured on a logical clock.

#![warn(missing_docs)]

pub mod courier;
pub mod frame;
pub mod link;
pub mod plan;
pub mod retry;

pub use courier::{AttemptOutcome, Courier, Delivery, NetCounters, Verdict};
pub use frame::{FrameError, Message, NackReason};
pub use link::{FrameCtx, InMemoryLink, Link};
pub use plan::{NetConfig, NetFault, NetPlan, STREAM_NET, STREAM_NET_JITTER};
pub use retry::RetryPolicy;
