//! Span-tree reconstruction from a flat record stream.
//!
//! The tracer's logical clock ticks once per read, so a well-formed
//! trace is a properly nested sequence of `start`/`end` records with
//! strictly increasing timestamps; `point` records attach to whichever
//! span is open when they fire. [`build_forest`] rebuilds that nesting
//! with an explicit stack and treats every violation — an `end` whose
//! name does not match the open span, an `end` with nothing open, a
//! span still open at end of stream, a clock that runs backwards — as a
//! typed [`ObsError::Structure`] naming the offending line. Lexical
//! strictness lives in [`crate::record`]; this module owns structural
//! strictness, so the two layers are independently testable.

use crate::error::ObsError;
use crate::record::{RecordKind, TraceRecord, TraceValue};

/// An instantaneous event attached to a span (or, when none was open,
/// collected in [`SpanForest::orphan_points`]).
#[derive(Clone, Debug, PartialEq)]
pub struct PointNode {
    /// Tick the point fired at.
    pub t: u64,
    /// Point name (one of the `fedwcm_trace::names` point constants in
    /// real traces).
    pub name: String,
    /// Ordered key/value fields, exactly as recorded.
    pub fields: Vec<(String, TraceValue)>,
}

/// One reconstructed span: a named interval with its nested children
/// and attached points.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanNode {
    /// Span name.
    pub name: String,
    /// Tick the span opened at.
    pub start_t: u64,
    /// Tick the span closed at.
    pub end_t: u64,
    /// Fields recorded on the `start` record.
    pub fields: Vec<(String, TraceValue)>,
    /// Fields recorded on the `end` record, if any.
    pub end_fields: Vec<(String, TraceValue)>,
    /// Child spans, in stream order.
    pub children: Vec<SpanNode>,
    /// Points that fired while this span was the innermost open one.
    pub points: Vec<PointNode>,
}

impl SpanNode {
    /// Total ticks from open to close.
    pub fn duration(&self) -> u64 {
        self.end_t - self.start_t
    }

    /// Ticks covered by direct children.
    pub fn child_ticks(&self) -> u64 {
        self.children.iter().map(SpanNode::duration).sum()
    }

    /// Ticks spent in this span itself, outside any child.
    pub fn self_ticks(&self) -> u64 {
        self.duration().saturating_sub(self.child_ticks())
    }

    /// The value of a start-record field, if present.
    pub fn field(&self, key: &str) -> Option<&TraceValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// The reconstructed trace: top-level spans plus any points that fired
/// outside every span.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SpanForest {
    /// Top-level spans, in stream order.
    pub roots: Vec<SpanNode>,
    /// Points recorded with no span open.
    pub orphan_points: Vec<PointNode>,
    /// Number of records the forest was built from.
    pub records: usize,
}

impl SpanForest {
    /// Visit every span in the forest depth-first, parents before
    /// children, with the ancestor name path (excluding the visited
    /// span itself).
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&[&'a str], &'a SpanNode)) {
        let mut path: Vec<&str> = Vec::new();
        for root in &self.roots {
            visit_node(root, &mut path, f);
        }
    }
}

fn visit_node<'a>(
    node: &'a SpanNode,
    path: &mut Vec<&'a str>,
    f: &mut impl FnMut(&[&'a str], &'a SpanNode),
) {
    f(path, node);
    path.push(&node.name);
    for child in &node.children {
        visit_node(child, path, f);
    }
    path.pop();
}

/// A span that has started but not yet ended.
struct OpenSpan {
    name: String,
    start_t: u64,
    start_line: usize,
    fields: Vec<(String, TraceValue)>,
    children: Vec<SpanNode>,
    points: Vec<PointNode>,
}

/// Rebuild the span forest from a parsed record stream. Records are
/// assumed to be one per JSONL line, so errors report `index + 1` as
/// the line number.
pub fn build_forest(records: &[TraceRecord]) -> Result<SpanForest, ObsError> {
    let mut forest = SpanForest {
        records: records.len(),
        ..SpanForest::default()
    };
    let mut stack: Vec<OpenSpan> = Vec::new();
    let mut last_t: Option<u64> = None;
    for (i, rec) in records.iter().enumerate() {
        let line = i + 1;
        if let Some(prev) = last_t {
            if rec.t <= prev {
                return Err(structure(
                    line,
                    format!("clock not strictly increasing: t={} after t={prev}", rec.t),
                ));
            }
        }
        last_t = Some(rec.t);
        match rec.kind {
            RecordKind::Start => stack.push(OpenSpan {
                name: rec.name.clone(),
                start_t: rec.t,
                start_line: line,
                fields: rec.fields.clone(),
                children: Vec::new(),
                points: Vec::new(),
            }),
            RecordKind::End => {
                let Some(open) = stack.pop() else {
                    return Err(structure(
                        line,
                        format!("end of \"{}\" with no span open", rec.name),
                    ));
                };
                if open.name != rec.name {
                    return Err(structure(
                        line,
                        format!(
                            "end of \"{}\" while \"{}\" (line {}) is open",
                            rec.name, open.name, open.start_line
                        ),
                    ));
                }
                let node = SpanNode {
                    name: open.name,
                    start_t: open.start_t,
                    end_t: rec.t,
                    fields: open.fields,
                    end_fields: rec.fields.clone(),
                    children: open.children,
                    points: open.points,
                };
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => forest.roots.push(node),
                }
            }
            RecordKind::Point => {
                let point = PointNode {
                    t: rec.t,
                    name: rec.name.clone(),
                    fields: rec.fields.clone(),
                };
                match stack.last_mut() {
                    Some(open) => open.points.push(point),
                    None => forest.orphan_points.push(point),
                }
            }
        }
    }
    if let Some(open) = stack.last() {
        return Err(structure(
            records.len(),
            format!(
                "span \"{}\" (line {}) still open at end of trace",
                open.name, open.start_line
            ),
        ));
    }
    Ok(forest)
}

fn structure(line: usize, msg: String) -> ObsError {
    ObsError::Structure { line, msg }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::parse_trace;

    fn forest_of(lines: &[&str]) -> Result<SpanForest, ObsError> {
        let text: String = lines.iter().map(|l| format!("{l}\n")).collect();
        build_forest(&parse_trace(&text).expect("lexically valid"))
    }

    #[test]
    fn rebuilds_nesting_and_attaches_points() {
        let f = forest_of(&[
            "{\"t\":1,\"ev\":\"start\",\"name\":\"round\",\"round\":0,\"sampled\":4}",
            "{\"t\":2,\"ev\":\"start\",\"name\":\"client_update\",\"client\":0}",
            "{\"t\":3,\"ev\":\"point\",\"name\":\"info\",\"msg\":\"hi\"}",
            "{\"t\":4,\"ev\":\"end\",\"name\":\"client_update\"}",
            "{\"t\":5,\"ev\":\"start\",\"name\":\"aggregate\"}",
            "{\"t\":7,\"ev\":\"end\",\"name\":\"aggregate\"}",
            "{\"t\":9,\"ev\":\"end\",\"name\":\"round\"}",
            "{\"t\":10,\"ev\":\"point\",\"name\":\"fault\"}",
        ])
        .expect("well-formed");
        assert_eq!(f.records, 8);
        assert_eq!(f.roots.len(), 1);
        assert_eq!(f.orphan_points.len(), 1);
        let round = &f.roots[0];
        assert_eq!(round.name, "round");
        assert_eq!(round.duration(), 8);
        assert_eq!(round.children.len(), 2);
        assert_eq!(round.children[0].points[0].name, "info");
        // children cover (4-2) + (7-5) = 4 ticks; self is the rest.
        assert_eq!(round.child_ticks(), 4);
        assert_eq!(round.self_ticks(), 4);
        assert_eq!(round.field("sampled"), Some(&TraceValue::U64(4)));
    }

    #[test]
    fn visit_walks_depth_first_with_paths() {
        let f = forest_of(&[
            "{\"t\":1,\"ev\":\"start\",\"name\":\"round\"}",
            "{\"t\":2,\"ev\":\"start\",\"name\":\"client_update\"}",
            "{\"t\":3,\"ev\":\"start\",\"name\":\"local_epoch\"}",
            "{\"t\":4,\"ev\":\"end\",\"name\":\"local_epoch\"}",
            "{\"t\":5,\"ev\":\"end\",\"name\":\"client_update\"}",
            "{\"t\":6,\"ev\":\"end\",\"name\":\"round\"}",
        ])
        .expect("well-formed");
        let mut seen = Vec::new();
        f.visit(&mut |path, node| seen.push(format!("{}/{}", path.join(";"), node.name)));
        assert_eq!(
            seen,
            vec![
                "/round",
                "round/client_update",
                "round;client_update/local_epoch"
            ]
        );
    }

    #[test]
    fn rejects_mismatched_end() {
        let err = forest_of(&[
            "{\"t\":1,\"ev\":\"start\",\"name\":\"round\"}",
            "{\"t\":2,\"ev\":\"end\",\"name\":\"aggregate\"}",
        ])
        .expect_err("mismatch");
        match err {
            ObsError::Structure { line: 2, msg } => assert!(msg.contains("aggregate")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_end_with_nothing_open() {
        let err =
            forest_of(&["{\"t\":1,\"ev\":\"end\",\"name\":\"round\"}"]).expect_err("empty stack");
        assert!(matches!(err, ObsError::Structure { line: 1, .. }));
    }

    #[test]
    fn rejects_unclosed_span_at_eof() {
        let err =
            forest_of(&["{\"t\":1,\"ev\":\"start\",\"name\":\"round\"}"]).expect_err("unclosed");
        match err {
            ObsError::Structure { msg, .. } => assert!(msg.contains("still open")),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_non_monotone_clock() {
        let err = forest_of(&[
            "{\"t\":5,\"ev\":\"start\",\"name\":\"round\"}",
            "{\"t\":5,\"ev\":\"end\",\"name\":\"round\"}",
        ])
        .expect_err("stuck clock");
        assert!(matches!(err, ObsError::Structure { line: 2, .. }));
    }

    #[test]
    fn empty_trace_builds_an_empty_forest() {
        let f = build_forest(&[]).expect("empty ok");
        assert!(f.roots.is_empty() && f.orphan_points.is_empty());
        assert_eq!(f.records, 0);
    }
}
