//! `checkpoint-symmetry` — static writer/reader conformance for the
//! hand-rolled binary serializers (`FWCK` checkpoints and friends).
//!
//! PR 6's FWCK v2→v3 skew bug was a *schema drift*: `to_bytes` gained
//! fields that `from_bytes` read in a different order. This rule makes
//! that class unrepresentable: for every paired writer/reader —
//! `to_bytes`/`from_bytes` on the same `impl` type, and same-file
//! `put_X`/`read_X` helper pairs — it extracts the **effect sequence**
//! of primitive serializer operations and requires the two sequences to
//! be identical: same operations, same widths, same order, same loop
//! structure.
//!
//! # Effect extraction
//!
//! The primitive vocabulary is `fedwcm_nn::serialize`: writes are
//! `put_u32`/`put_u64`/`put_f32`/`put_f64`/`put_f32s`/`put_str`/
//! `put_bytes` calls; reads are the matching `ByteReader` methods
//! (`u32`/`u64`/`f32`/`f64`/`f32s`/`str`/`bytes`) on a receiver the
//! type environment knows to be a `ByteReader`. These names are
//! **axioms**: they emit their op before call-graph resolution, so the
//! helpers' raw `extend_from_slice` bodies never dilute a sequence.
//! Every other resolved call splices in the callee's own sequence,
//! computed through [`crate::dataflow::summary_fixpoint`] — this is how
//! `put_metrics`/`read_metrics`, `put_update`/`read_update`, and
//! `read_usize` participate without any special cases.
//!
//! Control flow maps onto sequence structure:
//!
//! * loops become a [`SerOp::Rep`] group (a `Rep` only matches a `Rep`
//!   with an identical body);
//! * `if`/`match` contribute their condition/scrutinee effects plus the
//!   **longest** branch/arm — the "maximal schema" convention that
//!   makes version gates (`if version >= 3 { read } else { default }`)
//!   and tagged-union writers (`match value { Counter => …, Histogram
//!   => … }`) line up with their counterparts.
//!
//! A serializer written entirely below this vocabulary (raw
//! `to_le_bytes`, e.g. `he::rlwe`) extracts two empty sequences and
//! passes vacuously — the rule gates exactly the serializers built on
//! the shared helpers.

use crate::ast::{Block, Expr, FnDef, Stmt, TypeEnv};
use crate::callgraph::{CallGraph, FnId};
use crate::dataflow::summary_fixpoint;
use crate::engine::{Diagnostic, FileCtx};

const RULE: &str = "checkpoint-symmetry";

/// Primitive write helpers (free functions) and their op, in
/// `fedwcm_nn::serialize`.
const WRITE_PRIMS: &[(&str, &str)] = &[
    ("put_u32", "u32"),
    ("put_u64", "u64"),
    ("put_f32", "f32"),
    ("put_f64", "f64"),
    ("put_f32s", "f32s"),
    ("put_str", "str"),
    ("put_bytes", "bytes"),
];

/// Primitive read methods on `ByteReader` and their op.
const READ_PRIMS: &[&str] = &["u32", "u64", "f32", "f64", "f32s", "str", "bytes"];

/// One element of a serializer's effect sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SerOp {
    /// A primitive operation, named by width/kind (`u32`, `f32s`, …).
    Prim(&'static str),
    /// A loop repeating the inner sequence zero or more times.
    Rep(Vec<SerOp>),
}

impl SerOp {
    fn describe(&self) -> String {
        match self {
            SerOp::Prim(p) => p.to_string(),
            SerOp::Rep(inner) => format!(
                "loop[{}]",
                inner
                    .iter()
                    .map(SerOp::describe)
                    .collect::<Vec<_>>()
                    .join(" ")
            ),
        }
    }
}

/// Which side of the wire a function is on.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Dir {
    Write,
    Read,
}

/// Weight of a sequence for the longest-branch rule: every primitive
/// counts 1, a `Rep` counts 1 plus its body.
fn weight(seq: &[SerOp]) -> usize {
    seq.iter()
        .map(|op| match op {
            SerOp::Prim(_) => 1,
            SerOp::Rep(inner) => 1 + weight(inner),
        })
        .sum()
}

fn render(seq: &[SerOp]) -> String {
    seq.iter()
        .map(SerOp::describe)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Per-function extraction context.
struct Extract<'a> {
    cg: &'a CallGraph<'a>,
    id: FnId,
    dir: Dir,
    env: &'a TypeEnv,
    /// Callee summaries from the interprocedural fixpoint.
    summaries: &'a [Vec<SerOp>],
}

impl Extract<'_> {
    fn block(&self, b: &Block, out: &mut Vec<SerOp>) {
        for s in &b.stmts {
            match s {
                Stmt::Let {
                    init: Some(init), ..
                } => self.expr(init, out),
                Stmt::Let { init: None, .. } => {}
                Stmt::Expr(e) => self.expr(e, out),
            }
        }
    }

    fn expr(&self, e: &Expr, out: &mut Vec<SerOp>) {
        match e {
            Expr::Call { callee, args, .. } => {
                // Arguments evaluate before the call.
                for a in args {
                    self.expr(a, out);
                }
                if self.dir == Dir::Write {
                    if let Expr::Path { segs, .. } = &**callee {
                        if let Some(name) = segs.last() {
                            if let Some(&(_, op)) = WRITE_PRIMS.iter().find(|(p, _)| p == name) {
                                out.push(SerOp::Prim(op));
                                return;
                            }
                        }
                    }
                }
                if let Some(target) = self.cg.resolve(self.id, e) {
                    out.extend(self.summaries[target].iter().cloned());
                }
            }
            Expr::MethodCall {
                recv, method, args, ..
            } => {
                self.expr(recv, out);
                for a in args {
                    self.expr(a, out);
                }
                if self.dir == Dir::Read && args.is_empty() {
                    if let Some(&op) = READ_PRIMS.iter().find(|&&p| p == method) {
                        let is_reader = recv
                            .base_ident()
                            .and_then(|b| self.env.get(b))
                            .is_some_and(|t| t.contains("ByteReader"));
                        if is_reader {
                            out.push(SerOp::Prim(op));
                            return;
                        }
                    }
                }
                if let Some(target) = self.cg.resolve(self.id, e) {
                    out.extend(self.summaries[target].iter().cloned());
                }
            }
            Expr::If {
                cond, then, els, ..
            } => {
                self.expr(cond, out);
                let mut then_seq = Vec::new();
                self.block(then, &mut then_seq);
                let mut else_seq = Vec::new();
                if let Some(els) = els {
                    self.expr(els, &mut else_seq);
                }
                out.extend(if weight(&else_seq) > weight(&then_seq) {
                    else_seq
                } else {
                    then_seq
                });
            }
            Expr::Match {
                scrutinee, arms, ..
            } => {
                self.expr(scrutinee, out);
                let mut longest: Vec<SerOp> = Vec::new();
                for arm in arms {
                    let mut seq = Vec::new();
                    self.expr(arm, &mut seq);
                    if weight(&seq) > weight(&longest) {
                        longest = seq;
                    }
                }
                out.extend(longest);
            }
            Expr::Loop { head, body, .. } => {
                if let Some(h) = head {
                    self.expr(h, out);
                }
                let mut inner = Vec::new();
                self.block(body, &mut inner);
                if !inner.is_empty() {
                    out.push(SerOp::Rep(inner));
                }
            }
            Expr::BlockExpr(b) => self.block(b, out),
            Expr::Unary { expr, .. } | Expr::Cast { expr, .. } => self.expr(expr, out),
            Expr::Binary { lhs, rhs, .. } => {
                self.expr(lhs, out);
                self.expr(rhs, out);
            }
            Expr::Assign { target, value, .. } => {
                self.expr(target, out);
                self.expr(value, out);
            }
            Expr::Field { base, .. } => self.expr(base, out),
            Expr::Index { base, index, .. } => {
                self.expr(base, out);
                self.expr(index, out);
            }
            Expr::Closure { body, .. } => self.expr(body, out),
            Expr::Struct { fields, .. } => {
                for (_, v) in fields {
                    self.expr(v, out);
                }
            }
            Expr::Tuple { items, .. } | Expr::Array { items, .. } => {
                for i in items {
                    self.expr(i, out);
                }
            }
            Expr::Macro { args, .. } => {
                for a in args {
                    self.expr(a, out);
                }
            }
            Expr::Jump { value, .. } => {
                if let Some(v) = value {
                    self.expr(v, out);
                }
            }
            Expr::Path { .. } | Expr::Lit { .. } | Expr::Opaque { .. } => {}
        }
    }
}

/// Effect sequence of one function under the current summary table.
fn sequence_of(cg: &CallGraph<'_>, id: FnId, summaries: &[Vec<SerOp>]) -> Vec<SerOp> {
    let f = cg.fns[id].1;
    let dir = dir_of(f);
    let env = TypeEnv::of(f);
    let ex = Extract {
        cg,
        id,
        dir,
        env: &env,
        summaries,
    };
    let mut out = Vec::new();
    ex.block(&f.body, &mut out);
    // Backstop for (non-existent today) recursive serializers: cap the
    // sequence so a self-splicing summary cannot grow without bound.
    out.truncate(4096);
    out
}

/// A function participates as writer when it writes (`to_bytes`,
/// `put_*`, or contains write primitives), otherwise as reader. The
/// direction only gates which primitive vocabulary is *recognised*, so
/// classifying by name is enough for the paired functions; unpaired
/// helpers inherit whichever side their name suggests.
fn dir_of(f: &FnDef) -> Dir {
    if f.name == "from_bytes" || f.name.starts_with("read_") || f.name.starts_with("load_") {
        Dir::Read
    } else {
        Dir::Write
    }
}

/// Run the rule over the parsed workspace.
pub fn check_checkpoint_symmetry(
    files: &[FileCtx],
    cg: &CallGraph<'_>,
    diags: &mut Vec<Diagnostic>,
) {
    // Interprocedural summaries. Direction is per-function (a read
    // helper only ever recognises read primitives), so one table serves
    // both sides.
    let summaries = summary_fixpoint(cg, Vec::new(), |id, table| sequence_of(cg, id, table));

    // Pair writers with readers file by file.
    for (fi, ctx) in files.iter().enumerate() {
        if !ctx.is_lib_crate() {
            continue;
        }
        let fn_ids: Vec<FnId> = cg
            .fns
            .iter()
            .enumerate()
            .filter(|&(_, &(file, _))| file == fi)
            .map(|(id, _)| id)
            .collect();
        let find = |pred: &dyn Fn(&FnDef) -> bool| -> Option<FnId> {
            let matches: Vec<FnId> = fn_ids
                .iter()
                .copied()
                .filter(|&id| pred(cg.fns[id].1))
                .collect();
            (matches.len() == 1).then(|| matches[0])
        };

        let mut pairs: Vec<(FnId, FnId)> = Vec::new();
        // `to_bytes`/`from_bytes` on the same impl type.
        for &id in &fn_ids {
            let f = cg.fns[id].1;
            if f.name != "to_bytes" {
                continue;
            }
            if let Some(reader) =
                find(&|g: &FnDef| g.name == "from_bytes" && g.self_ty == cg.fns[id].1.self_ty)
            {
                pairs.push((id, reader));
            }
        }
        // Same-file `put_X`/`read_X` helper pairs (the primitives
        // themselves are axioms, never paired).
        for &id in &fn_ids {
            let f = cg.fns[id].1;
            let Some(suffix) = f.name.strip_prefix("put_") else {
                continue;
            };
            if WRITE_PRIMS.iter().any(|(p, _)| *p == f.name) {
                continue;
            }
            let reader_name = format!("read_{suffix}");
            if let Some(reader) = find(&|g: &FnDef| g.name == reader_name) {
                pairs.push((id, reader));
            }
        }

        for (w, r) in pairs {
            if ctx.is_test_line(cg.fns[w].1.line) {
                continue;
            }
            compare_pair(ctx, cg, w, r, &summaries, diags);
        }
    }
}

/// Structural comparison of the writer's and reader's sequences; any
/// divergence is a hard error on the writer, naming the reader.
fn compare_pair(
    ctx: &FileCtx,
    cg: &CallGraph<'_>,
    w: FnId,
    r: FnId,
    summaries: &[Vec<SerOp>],
    diags: &mut Vec<Diagnostic>,
) {
    let (wf, rf) = (cg.fns[w].1, cg.fns[r].1);
    let (ws, rs) = (&summaries[w], &summaries[r]);
    if let Some(msg) = diff_seq(ws, rs, &format!("`{}`/`{}`", wf.name, rf.name)) {
        diags.push(ctx.diag(
            RULE,
            wf.line,
            format!(
                "{msg} — writer `{}` (line {}) and reader `{}` (line {}) must perform \
                 identical primitive sequences; writer: [{}], reader: [{}]",
                wf.name,
                wf.line,
                rf.name,
                rf.line,
                render(ws),
                render(rs),
            ),
        ));
    }
}

/// First divergence between two sequences, described; `None` when equal.
fn diff_seq(ws: &[SerOp], rs: &[SerOp], pair: &str) -> Option<String> {
    for (i, (wo, ro)) in ws.iter().zip(rs.iter()).enumerate() {
        match (wo, ro) {
            (SerOp::Prim(a), SerOp::Prim(b)) => {
                if a != b {
                    return Some(format!(
                        "{pair} diverge at step {}: field written as `{a}` but read as `{b}` \
                         (width/order mismatch)",
                        i + 1
                    ));
                }
            }
            (SerOp::Rep(wi), SerOp::Rep(ri)) => {
                if let Some(msg) = diff_seq(wi, ri, pair) {
                    return Some(format!("inside repeated group at step {}: {msg}", i + 1));
                }
            }
            (a, b) => {
                return Some(format!(
                    "{pair} diverge at step {}: writer has {}, reader has {} \
                     (loop structure mismatch)",
                    i + 1,
                    a.describe(),
                    b.describe(),
                ));
            }
        }
    }
    if ws.len() > rs.len() {
        return Some(format!(
            "{pair}: field written but never read (writer performs {} extra op{} starting \
             with {})",
            ws.len() - rs.len(),
            if ws.len() - rs.len() == 1 { "" } else { "s" },
            ws[rs.len()].describe(),
        ));
    }
    if rs.len() > ws.len() {
        return Some(format!(
            "{pair}: field read but never written (reader performs {} extra op{} starting \
             with {})",
            rs.len() - ws.len(),
            if rs.len() - ws.len() == 1 { "" } else { "s" },
            rs[ws.len()].describe(),
        ));
    }
    None
}
